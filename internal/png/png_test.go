package png

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// paperExample is the 9-node, 3-partition graph of the paper's Fig. 3a.
func paperExample(t testing.TB) (*graph.Graph, partition.Layout) {
	t.Helper()
	edges := []graph.Edge{
		{Src: 3, Dst: 2}, {Src: 6, Dst: 0}, {Src: 6, Dst: 1}, {Src: 7, Dst: 2},
		{Src: 0, Dst: 4}, {Src: 1, Dst: 3}, {Src: 1, Dst: 4}, {Src: 2, Dst: 5},
		{Src: 2, Dst: 8}, {Src: 7, Dst: 8},
	}
	g, err := graph.FromEdges(9, edges, false, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Partition size 4 (power of two) still yields the paper's {0-3, 4-7, 8}
	// grouping closely enough for structural assertions below; the paper
	// uses size 3, which is not a power of two, so we assert on our own
	// partitioning ({0..3}, {4..7}, {8}).
	layout, err := partition.NewLayout(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g, layout
}

func TestBuildPaperExample(t *testing.T) {
	g, layout := paperExample(t)
	p, err := Build(g, layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.K != 3 {
		t.Fatalf("K = %d, want 3", p.K)
	}
	if p.DestTotal() != g.NumEdges() {
		t.Fatalf("DestTotal = %d, want %d", p.DestTotal(), g.NumEdges())
	}
	// Partition 0 nodes {0,1,2,3}: edges 0→4(P1), 1→3(P0), 1→4(P1), 2→5(P1),
	// 2→8(P2), 3→2(P0). Compressed: 1→P0, 3→P0, 0→P1, 1→P1, 2→P1, 2→P2 = 6.
	if got := len(p.SubSrc[0]); got != 6 {
		t.Fatalf("partition 0 compressed edges = %d, want 6", got)
	}
	// Bin 0 updates: from P0 {1,3}, from P1 {6,7}; |updates| = 4.
	if p.UpdateCount[0] != 4 {
		t.Fatalf("UpdateCount[0] = %d, want 4", p.UpdateCount[0])
	}
	// Bin 0 destination stream: sources ascending within each partition:
	// 1→{3}, 3→{2}, 6→{0,1}, 7→{2}; every run's first entry is MSB-tagged.
	want := []uint32{
		3 | graph.MSBMask,
		2 | graph.MSBMask,
		0 | graph.MSBMask, 1,
		2 | graph.MSBMask,
	}
	got := p.DestIDs[0]
	if len(got) != len(want) {
		t.Fatalf("bin 0 stream = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin 0 stream[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestCompressionRatioBounds(t *testing.T) {
	g, layout := paperExample(t)
	p, err := Build(g, layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := p.CompressionRatio(g)
	if r < 1 {
		t.Fatalf("r = %v < 1", r)
	}
	maxR := float64(g.NumEdges()) / float64(g.NumNodes())
	if r > maxR+2 { // loose upper sanity bound (dangling nodes shrink denominator)
		t.Fatalf("r = %v exceeds plausible maximum", r)
	}
	// 10 edges; compressed: P0:6 (see above) + P1 {6→P0 (0,1), 7→P0 (2), 7→P2 (8)} = 3 + P2: 0 = 9.
	if p.EdgesCompressed != 9 {
		t.Fatalf("EdgesCompressed = %d, want 9", p.EdgesCompressed)
	}
}

func TestSinglePartitionDegenerate(t *testing.T) {
	g, _ := paperExample(t)
	layout, err := partition.NewLayout(9, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(g, layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.K != 1 {
		t.Fatalf("K = %d, want 1", p.K)
	}
	// With one partition every node's out-edges compress to one edge:
	// |E'| = number of non-dangling nodes = 6.
	if p.EdgesCompressed != 6 {
		t.Fatalf("EdgesCompressed = %d, want 6", p.EdgesCompressed)
	}
}

func TestPartitionSizeOneDegenerate(t *testing.T) {
	g, _ := paperExample(t)
	layout, err := partition.NewLayout(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(g, layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	// With singleton partitions nothing compresses: |E'| = |E| and r = 1.
	if p.EdgesCompressed != g.NumEdges() {
		t.Fatalf("EdgesCompressed = %d, want %d", p.EdgesCompressed, g.NumEdges())
	}
	if r := p.CompressionRatio(g); r != 1 {
		t.Fatalf("r = %v, want 1", r)
	}
}

func TestLayoutMismatchRejected(t *testing.T) {
	g, _ := paperExample(t)
	layout, err := partition.NewLayout(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, layout, 1); err == nil {
		t.Fatal("Build accepted mismatched layout")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil, false, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	layout, err := partition.NewLayout(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(g, layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	g, err := gen.ErdosRenyi(1000, 8000, 5, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	layout, err := partition.NewLayout(1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(g, layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, layout, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgesCompressed != b.EdgesCompressed {
		t.Fatal("parallel build changed |E'|")
	}
	for q := 0; q < a.K; q++ {
		if len(a.DestIDs[q]) != len(b.DestIDs[q]) {
			t.Fatalf("bin %d length differs", q)
		}
		for i := range a.DestIDs[q] {
			if a.DestIDs[q][i] != b.DestIDs[q][i] {
				t.Fatalf("bin %d entry %d differs", q, i)
			}
		}
	}
	for pi := 0; pi < a.K; pi++ {
		for i := range a.SubSrc[pi] {
			if a.SubSrc[pi][i] != b.SubSrc[pi][i] {
				t.Fatalf("partition %d SubSrc differs at %d", pi, i)
			}
		}
	}
}

// bruteForceCompressed counts distinct (node, destination-partition) pairs.
func bruteForceCompressed(g *graph.Graph, layout partition.Layout) int64 {
	var total int64
	for v := 0; v < g.NumNodes(); v++ {
		seen := make(map[int]bool)
		for _, u := range g.OutNeighbors(graph.NodeID(v)) {
			seen[layout.PartitionOf(u)] = true
		}
		total += int64(len(seen))
	}
	return total
}

func TestPropertyCompressionMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16, sizeLog uint8) bool {
		n := int(nRaw)%400 + 1
		m := int64(mRaw) % 4000
		size := 1 << (sizeLog%8 + 1)
		rng := rand.New(rand.NewPCG(seed, 77))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{Src: graph.NodeID(rng.IntN(n)), Dst: graph.NodeID(rng.IntN(n))}
		}
		g, err := graph.FromEdges(n, edges, false, graph.BuildOptions{})
		if err != nil {
			return false
		}
		layout, err := partition.NewLayout(n, size)
		if err != nil {
			return false
		}
		p, err := Build(g, layout, 2)
		if err != nil {
			return false
		}
		if p.Validate(g) != nil {
			return false
		}
		return p.EdgesCompressed == bruteForceCompressed(g, layout)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUpdateOffsetsDisjoint(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%300 + 2
		m := int64(mRaw) % 3000
		rng := rand.New(rand.NewPCG(seed, 99))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{Src: graph.NodeID(rng.IntN(n)), Dst: graph.NodeID(rng.IntN(n))}
		}
		g, err := graph.FromEdges(n, edges, false, graph.BuildOptions{})
		if err != nil {
			return false
		}
		layout, err := partition.NewLayout(n, 16)
		if err != nil {
			return false
		}
		p, err := Build(g, layout, 2)
		if err != nil {
			return false
		}
		// For every bin q, the write ranges of successive source partitions
		// must tile [0, UpdateCount[q]) exactly.
		for q := 0; q < p.K; q++ {
			var expect int32
			for pi := 0; pi < p.K; pi++ {
				if p.UpdateWriteOff[pi*p.K+q] != expect {
					return false
				}
				off := p.SubOff[pi]
				expect += off[q+1] - off[q]
			}
			if int64(expect) != p.UpdateCount[q] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionImprovesWithPartitionSize(t *testing.T) {
	// Fig. 11's driving property: r is non-decreasing in partition size.
	g, err := gen.RMAT(gen.Graph500RMAT(12, 16, 7), graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, size := range []int{64, 256, 1024, 4096} {
		layout, err := partition.NewLayout(g.NumNodes(), size)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Build(g, layout, 2)
		if err != nil {
			t.Fatal(err)
		}
		r := p.CompressionRatio(g)
		if r < prev-1e-9 {
			t.Fatalf("compression ratio decreased: %v after %v at size %d", r, prev, size)
		}
		prev = r
	}
	if prev < 1.5 {
		t.Fatalf("large partitions should compress an RMAT graph; r = %v", prev)
	}
}
