package apps

import (
	"container/heap"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// dijkstra is the reference shortest-path implementation.
func dijkstra(g *graph.Graph, source graph.NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	pq := &distHeap{{node: source, d: 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if top.d > dist[top.node] {
			continue
		}
		ws := g.OutWeights(top.node)
		for i, u := range g.OutNeighbors(top.node) {
			w := 1.0
			if ws != nil {
				w = float64(ws[i])
			}
			if nd := top.d + w; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distEntry{node: u, d: nd})
			}
		}
	}
	return dist
}

type distEntry struct {
	node graph.NodeID
	d    float64
}
type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// bfsComponents is the reference WCC implementation.
func bfsComponents(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	label := make([]graph.NodeID, n)
	for i := range label {
		label[i] = graph.NodeID(n) // unvisited sentinel
	}
	for v := 0; v < n; v++ {
		if label[v] != graph.NodeID(n) {
			continue
		}
		queue := []graph.NodeID{graph.NodeID(v)}
		label[v] = graph.NodeID(v)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, u := range g.OutNeighbors(x) {
				if label[u] == graph.NodeID(n) {
					label[u] = graph.NodeID(v)
					queue = append(queue, u)
				}
			}
			for _, u := range g.InNeighbors(x) {
				if label[u] == graph.NodeID(n) {
					label[u] = graph.NodeID(v)
					queue = append(queue, u)
				}
			}
		}
	}
	return label
}

func TestSSSPMatchesDijkstraUnweighted(t *testing.T) {
	g, err := gen.ErdosRenyi(300, 1800, 7, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []Backend{BackendPCPM, BackendCSR} {
		res, err := SSSP(g, 0, backend, 256)
		if err != nil {
			t.Fatal(err)
		}
		ref := dijkstra(g, 0)
		for v := range ref {
			got := float64(res.Dist[v])
			if math.IsInf(ref[v], 1) != math.IsInf(got, 1) {
				t.Fatalf("backend %d: reachability differs at node %d", backend, v)
			}
			if !math.IsInf(ref[v], 1) && math.Abs(got-ref[v]) > 1e-4 {
				t.Fatalf("backend %d: dist[%d] = %v, want %v", backend, v, got, ref[v])
			}
		}
	}
}

func TestSSSPWeighted(t *testing.T) {
	base, err := gen.ErdosRenyi(200, 1200, 11, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.WithUniformWeights(base, 0.5, 3.0, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SSSP(g, 5, BackendPCPM, 128)
	if err != nil {
		t.Fatal(err)
	}
	ref := dijkstra(g, 5)
	for v := range ref {
		got := float64(res.Dist[v])
		if math.IsInf(ref[v], 1) {
			if !math.IsInf(got, 1) {
				t.Fatalf("node %d should be unreachable", v)
			}
			continue
		}
		if math.Abs(got-ref[v]) > 1e-3 {
			t.Fatalf("dist[%d] = %v, want %v", v, got, ref[v])
		}
	}
}

func TestSSSPRejectsNegativeWeights(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1, W: -1}}, true, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SSSP(g, 0, BackendPCPM, 64); err == nil {
		t.Fatal("accepted negative weight")
	}
}

func TestSSSPRejectsBadSource(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}}, false, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SSSP(g, 9, BackendPCPM, 64); err == nil {
		t.Fatal("accepted out-of-range source")
	}
}

func TestSSSPPathGraph(t *testing.T) {
	// 0 -> 1 -> 2 -> 3: distances 0,1,2,3; needs exactly 3 productive rounds.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	g, err := graph.FromEdges(4, edges, false, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SSSP(g, 0, BackendPCPM, 16)
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range []float32{0, 1, 2, 3} {
		if res.Dist[v] != want {
			t.Fatalf("dist = %v", res.Dist)
		}
	}
}

func TestWCCMatchesBFS(t *testing.T) {
	// Sparse random graph: many components.
	g, err := gen.ErdosRenyi(500, 400, 3, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []Backend{BackendPCPM, BackendCSR} {
		res, err := WCC(g, backend, 128)
		if err != nil {
			t.Fatal(err)
		}
		ref := bfsComponents(g)
		// Same partition: labels must induce the same equivalence classes.
		refOf := map[graph.NodeID]graph.NodeID{}
		for v := range ref {
			l := res.Labels[v]
			if prev, ok := refOf[l]; ok {
				if prev != ref[v] {
					t.Fatalf("backend %d: label %d spans two reference components", backend, l)
				}
			} else {
				refOf[l] = ref[v]
			}
		}
		// Count reference components.
		refSet := map[graph.NodeID]bool{}
		for _, l := range ref {
			refSet[l] = true
		}
		if res.Components != len(refSet) {
			t.Fatalf("backend %d: components = %d, want %d", backend, res.Components, len(refSet))
		}
	}
}

func TestWCCSingleComponentCycle(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}
	g, err := graph.FromEdges(3, edges, false, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := WCC(g, BackendPCPM, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 1 {
		t.Fatalf("components = %d, want 1", res.Components)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatalf("labels = %v, want all 0", res.Labels)
		}
	}
}

func TestWCCEmptyAndIsolated(t *testing.T) {
	empty, err := graph.FromEdges(0, nil, false, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := WCC(empty, BackendPCPM, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 0 {
		t.Fatalf("empty graph components = %d", res.Components)
	}
	iso, err := graph.FromEdges(4, nil, false, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err = WCC(iso, BackendCSR, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 4 {
		t.Fatalf("isolated nodes components = %d, want 4", res.Components)
	}
}

func TestPropertyBackendsAgree(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%150 + 2
		m := int64(mRaw) % 1000
		rng := rand.New(rand.NewPCG(seed, 5))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{Src: graph.NodeID(rng.IntN(n)), Dst: graph.NodeID(rng.IntN(n))}
		}
		g, err := graph.FromEdges(n, edges, false, graph.BuildOptions{})
		if err != nil {
			return false
		}
		a, err := SSSP(g, 0, BackendPCPM, 64)
		if err != nil {
			return false
		}
		b, err := SSSP(g, 0, BackendCSR, 64)
		if err != nil {
			return false
		}
		for v := range a.Dist {
			if a.Dist[v] != b.Dist[v] {
				return false
			}
		}
		wa, err := WCC(g, BackendPCPM, 64)
		if err != nil {
			return false
		}
		wb, err := WCC(g, BackendCSR, 64)
		if err != nil {
			return false
		}
		return wa.Components == wb.Components
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
