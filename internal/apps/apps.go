// Package apps demonstrates the paper's generality claim (§1: "many graph
// algorithms can be similarly modeled as a series of SpMV operations"; §6:
// "PCPM can be an efficient programming model for other graph algorithms"):
// single-source shortest paths and weakly connected components expressed as
// iterated semiring SpMV over the partition-centric engine.
package apps

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/spmv"
)

// Backend selects the SpMV engine used by the iterative solvers.
type Backend int

const (
	// BackendPCPM uses the partition-centric engine (default).
	BackendPCPM Backend = iota
	// BackendCSR uses the conventional pull engine.
	BackendCSR
)

type semiringMul interface {
	MulSemiring(x, y []float32, sr spmv.Semiring) error
}

func newBackend(m *spmv.Matrix, b Backend, partBytes int) (semiringMul, error) {
	switch b {
	case BackendCSR:
		return spmv.NewCSREngine(m, 1), nil
	case BackendPCPM:
		return spmv.NewPCPMEngine(m, partBytes, 1)
	default:
		return nil, fmt.Errorf("apps: unknown backend %d", b)
	}
}

// SSSPResult reports shortest-path distances; unreachable nodes hold +Inf.
type SSSPResult struct {
	Dist       []float32
	Iterations int
}

// SSSP computes single-source shortest paths on a non-negatively weighted
// graph by Bellman-Ford iteration over the (min, +) semiring:
// dist' = min(dist, A ⊗ dist), one SpMV per round, until a fixpoint (at
// most |V|-1 rounds). Unweighted graphs use unit edge lengths.
func SSSP(g *graph.Graph, source graph.NodeID, backend Backend, partBytes int) (*SSSPResult, error) {
	n := g.NumNodes()
	if int(source) >= n {
		return nil, fmt.Errorf("apps: source %d outside %d-node graph", source, n)
	}
	if err := checkNonNegativeWeights(g); err != nil {
		return nil, err
	}
	m, err := minWeightMatrix(g)
	if err != nil {
		return nil, err
	}
	eng, err := newBackend(m, backend, partBytes)
	if err != nil {
		return nil, err
	}
	sr := spmv.MinPlus()
	inf := float32(math.Inf(1))
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[source] = 0
	y := make([]float32, n)
	res := &SSSPResult{}
	maxRounds := n - 1
	if maxRounds < 1 {
		maxRounds = 1
	}
	for round := 1; round <= maxRounds; round++ {
		if err := eng.MulSemiring(dist, y, sr); err != nil {
			return nil, err
		}
		changed := false
		for v := 0; v < n; v++ {
			if y[v] < dist[v] {
				dist[v] = y[v]
				changed = true
			}
		}
		res.Iterations = round
		if !changed {
			break
		}
	}
	res.Dist = dist
	return res, nil
}

// minWeightMatrix builds the push matrix with parallel edges collapsed to
// their minimum weight. spmv.NewMatrix sums duplicates — correct for the
// arithmetic semiring, wrong for (min, +) where the cheaper parallel edge
// must win.
func minWeightMatrix(g *graph.Graph) (*spmv.Matrix, error) {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	entries := make([]spmv.Entry, 0, len(edges))
	for _, e := range edges {
		if n := len(entries); n > 0 &&
			entries[n-1].Col == e.Src && entries[n-1].Row == e.Dst {
			if e.W < entries[n-1].Val {
				entries[n-1].Val = e.W
			}
			continue
		}
		entries = append(entries, spmv.Entry{Row: e.Dst, Col: e.Src, Val: e.W})
	}
	return spmv.NewMatrix(g.NumNodes(), g.NumNodes(), entries)
}

func checkNonNegativeWeights(g *graph.Graph) error {
	if !g.Weighted() {
		return nil
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, w := range g.OutWeights(graph.NodeID(v)) {
			if w < 0 {
				return fmt.Errorf("apps: negative edge weight %v at node %d", w, v)
			}
		}
	}
	return nil
}

// WCCResult labels each node with the smallest node ID in its weakly
// connected component.
type WCCResult struct {
	Labels     []graph.NodeID
	Components int
	Iterations int
}

// WCC computes weakly connected components by min-label propagation over
// the (min, first) semiring on the symmetrized graph: each round every node
// adopts the minimum label among itself and its neighbors (both
// directions), iterated to a fixpoint.
func WCC(g *graph.Graph, backend Backend, partBytes int) (*WCCResult, error) {
	n := g.NumNodes()
	if n == 0 {
		return &WCCResult{}, nil
	}
	if n > 1<<24 {
		// Labels travel as float32 values; beyond 2^24 node IDs lose
		// exactness. The engines would need a uint32 value type for that.
		return nil, fmt.Errorf("apps: WCC supports at most %d nodes (float32 label precision)", 1<<24)
	}
	// Symmetrize: weak connectivity ignores direction.
	edges := g.Edges()
	sym := make([]graph.Edge, 0, 2*len(edges))
	for _, e := range edges {
		sym = append(sym, graph.Edge{Src: e.Src, Dst: e.Dst, W: 1},
			graph.Edge{Src: e.Dst, Dst: e.Src, W: 1})
	}
	sg, err := graph.FromEdges(n, sym, false, graph.BuildOptions{Dedup: true})
	if err != nil {
		return nil, err
	}
	m, err := spmv.FromGraph(sg)
	if err != nil {
		return nil, err
	}
	eng, err := newBackend(m, backend, partBytes)
	if err != nil {
		return nil, err
	}
	sr := spmv.MinFirst()
	label := make([]float32, n)
	for v := range label {
		label[v] = float32(v)
	}
	y := make([]float32, n)
	res := &WCCResult{}
	for round := 1; round <= n; round++ {
		if err := eng.MulSemiring(label, y, sr); err != nil {
			return nil, err
		}
		changed := false
		for v := 0; v < n; v++ {
			if y[v] < label[v] {
				label[v] = y[v]
				changed = true
			}
		}
		res.Iterations = round
		if !changed {
			break
		}
	}
	res.Labels = make([]graph.NodeID, n)
	seen := make(map[graph.NodeID]bool)
	for v := 0; v < n; v++ {
		l := graph.NodeID(label[v])
		res.Labels[v] = l
		seen[l] = true
	}
	res.Components = len(seen)
	return res, nil
}
