package lint

import (
	"go/ast"
	"go/types"
)

// PathString renders an ident/selector chain ("s.follower.mu") and reports
// whether e is such a simple path. Parentheses are looked through; calls,
// indexing, and dereferences make the path non-simple.
func PathString(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.ParenExpr:
		return PathString(e.X)
	case *ast.SelectorExpr:
		base, ok := PathString(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// IsNamedType reports whether t (after stripping one level of pointer) is
// the named type pkgName.typeName. Matching by package *name* rather than
// full import path lets the analyzers fire both on the real packages
// (repro/internal/serve) and on the linttest fixtures (testdata "serve").
func IsNamedType(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == typeName &&
		obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// IsFloat reports whether t's underlying type is a floating-point kind.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// WalkExprs visits n and its children in pre-order like ast.Inspect, but
// does not descend into function literals: their bodies execute at some
// other time (or never), so statement-order analyses must treat them as
// separate functions.
func WalkExprs(n ast.Node, fn func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		return fn(c)
	})
}

// FuncBodies calls fn for every function body in the pass: declarations
// and function literals alike, each as its own scope. Analyzers using it
// must skip nested FuncLit subtrees while walking one body (WalkExprs and
// FlowInterp already do), since each literal gets its own fn call. The
// enclosing declaration rides along for literals too (nil in package-level
// variable initializers), so analyzers can consult its doc comment or name.
func FuncBodies(pass *Pass, fn func(decl *ast.FuncDecl, body *ast.BlockStmt, isLit bool)) {
	for _, f := range pass.Files {
		var enclosing *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
				if n.Body != nil {
					fn(n, n.Body, false)
				}
			case *ast.FuncLit:
				fn(enclosing, n.Body, true)
			}
			return true
		})
	}
}
