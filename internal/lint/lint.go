// Package lint is a self-contained static-analysis framework plus the
// project-specific analyzers that enforce this repository's invariants:
// determinism of float reductions (floatmaporder), immutability of published
// snapshots (snapshotalias), mutex discipline on annotated fields
// (guardedby), WAL-append-before-publish ordering (walorder), and checked
// Close/Sync errors on the durability surfaces (closecheck). Package stock
// carries lightweight reimplementations of the general-purpose vet-style
// passes (nilness, shadow, lostcancel, unusedwrite).
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape —
// Analyzer, Pass, Diagnostic — but is built entirely on the standard
// library: packages are enumerated and their imports resolved through
// `go list -export` (compiler export data from the build cache), then
// type-checked with go/types. The build environment is hermetic, so
// depending on x/tools itself is not an option; the subset implemented here
// is exactly what the project's analyzers need.
//
// Diagnostics can be suppressed with a directive comment on the offending
// line or the line directly above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; an ignore without one is itself reported. Every
// suppression in the tree documents why the flagged pattern is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by pcpm-lint -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package and
// collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed syntax trees, with comments.
	Files []*ast.File
	// Pkg and TypesInfo are the go/types view of the package.
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving (non-suppressed) diagnostics in stable order. Suppressed
// findings are dropped; malformed or unused ignore directives are reported
// as findings of the pseudo-analyzer "lintdirective".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		diags = append(diags, applyIgnores(pkg, pkgDiags)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}
