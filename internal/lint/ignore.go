package lint

import (
	"go/ast"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	names  map[string]bool // analyzer names it silences
	reason string
}

const ignorePrefix = "//lint:ignore "

// collectIgnores parses every //lint:ignore directive in the package.
// The returned map is keyed by (filename, line) of the directive itself;
// a directive suppresses findings on its own line and on the line below,
// so both a trailing comment and a comment on its own line work:
//
//	risky()            //lint:ignore walorder replay path, record owns an LSN
//
//	//lint:ignore guardedby constructor, the value is not shared yet
//	risky()
//
// Malformed directives (missing analyzer list or missing reason) are
// reported as findings so they cannot silently suppress nothing.
func collectIgnores(pkg *Package, report func(Diagnostic)) map[[2]any]*ignoreDirective {
	ignores := make(map[[2]any]*ignoreDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimSpace(ignorePrefix)) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, strings.TrimSpace(ignorePrefix)))
				nameList, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if nameList == "" || reason == "" {
					report(Diagnostic{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer>[,<analyzer>...] <reason>\"",
					})
					continue
				}
				d := &ignoreDirective{names: make(map[string]bool), reason: reason}
				for _, n := range strings.Split(nameList, ",") {
					d.names[strings.TrimSpace(n)] = true
				}
				ignores[[2]any{pos.Filename, pos.Line}] = d
			}
		}
	}
	return ignores
}

// applyIgnores drops diagnostics suppressed by an ignore directive on the
// same or the preceding line, and appends findings for malformed directives.
func applyIgnores(pkg *Package, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	ignores := collectIgnores(pkg, func(d Diagnostic) { out = append(out, d) })
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			if ig, ok := ignores[[2]any{d.Pos.Filename, line}]; ok && ig.names[d.Analyzer] {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree. The little sibling of
// x/tools' inspector, sufficient for these analyzers.
func Inspect(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}
