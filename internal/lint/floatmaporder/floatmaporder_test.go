package floatmaporder_test

import (
	"testing"

	"repro/internal/lint/floatmaporder"
	"repro/internal/lint/linttest"
)

func TestFloatMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", floatmaporder.Analyzer, "floatmap")
}
