// Package floatmap exercises the floatmaporder analyzer: float reductions
// that cross map-iteration order are flagged, deterministic forms are not.
package floatmap

import "sort"

// seedMassBad is the PR-8 delta.Apply bug shape: per-edge seed mass summed
// while ranging the changed-node map, so each seedMass cell accumulates its
// contributions in map order — nondeterministic at the ulp level.
func seedMassBad(changed map[uint32]bool, adj [][]uint32, w float64) []float64 {
	seedMass := make([]float64, len(adj))
	for u := range changed {
		for _, v := range adj[u] {
			seedMass[v] += w // want `float accumulation`
		}
	}
	return seedMass
}

// seedMassGood is the fixed form: the keys are collected and sorted, and
// the accumulation ranges the sorted slice — same sums, fixed order.
func seedMassGood(changed map[uint32]bool, adj [][]uint32, w float64) []float64 {
	touched := make([]uint32, 0, len(changed))
	for u := range changed {
		touched = append(touched, u)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	seedMass := make([]float64, len(adj))
	for _, u := range touched {
		for _, v := range adj[u] {
			seedMass[v] += w
		}
	}
	return seedMass
}

func directSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation`
	}
	return sum
}

// spelledOut is the same reduction without the compound operator.
func spelledOut(m map[string]float64) float32 {
	var sum float32
	for _, v := range m {
		sum = sum + float32(v) // want `float accumulation`
	}
	return sum
}

// intSum is fine: integer addition is associative, order cannot show.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// perElement is fine: the target is indexed by the loop's own key, so each
// iteration owns its cell and order cannot matter.
func perElement(m, out map[string]float64) {
	for k, v := range m {
		out[k] += v
	}
}

// perIterationLocal is fine: the accumulator resets every iteration, so
// nothing float-valued crosses map iterations.
func perIterationLocal(m map[string][]float64) float64 {
	var maxSum float64
	for _, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		if s > maxSum {
			maxSum = s
		}
	}
	return maxSum
}

// nested reports once, at the innermost map range that carries the sum.
func nested(ms map[string]map[string]float64) float64 {
	var total float64
	for _, inner := range ms {
		for _, v := range inner {
			total += v // want `float accumulation`
		}
	}
	return total
}
