// Package floatmaporder flags floating-point accumulation performed while
// ranging over a map. Map iteration order is randomized per run, and float
// addition is not associative, so `sum += v` inside `for range m` yields
// ulp-level different results run to run — the exact bug class PR 8 found
// by hand in delta.Apply, where map-order seed summation made SeedL1 (and
// the WAL-logged repair drift downstream of it) nondeterministic. The
// project's replication goldens promise bit-equal follower state, so every
// such reduction must run in a deterministic order: collect the keys,
// sort, then accumulate.
//
// Flagged: `+=` and `-=` (and the spelled-out `x = x + e` / `x = x - e`
// forms) whose left-hand side is float-typed, lexically inside the body of
// a `for range` over a map. Not flagged: accumulators declared inside the
// loop body (they reset each iteration), and element writes indexed by the
// loop's own key or value variables (each iteration touches its own
// element exactly once, so order cannot matter).
package floatmaporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the floatmaporder pass.
var Analyzer = &lint.Analyzer{
	Name: "floatmaporder",
	Doc:  "flags float accumulation inside `for range` over a map (schedule-dependent reduction)",
	Run:  run,
}

func run(pass *lint.Pass) error {
	lint.Inspect(pass, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		xt := pass.TypesInfo.TypeOf(rng.X)
		if xt == nil {
			return true
		}
		if _, isMap := xt.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, rng)
		return true
	})
	return nil
}

// checkMapRange scans one map-range body for order-sensitive float sums.
// Nested map ranges are pruned — the enclosing Inspect gives each its own
// check, so one accumulation reports once. Nested slice/array ranges are
// walked: an accumulation inside them still crosses the outer map's
// iterations (the PR-8 delta.Apply bug summed over out-neighbor slices
// inside a map range).
func checkMapRange(pass *lint.Pass, rng *ast.RangeStmt) {
	iterVars := rangeVarObjects(pass, rng)
	lint.WalkExprs(rng.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rng {
			if xt := pass.TypesInfo.TypeOf(inner.X); xt != nil {
				if _, isMap := xt.Underlying().(*types.Map); isMap {
					return false
				}
			}
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		var lhs ast.Expr
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			lhs = as.Lhs[0]
		case token.ASSIGN:
			if len(as.Lhs) != 1 {
				return true
			}
			// x = x + e / x = x - e: same reduction, spelled out.
			bin, ok := as.Rhs[0].(*ast.BinaryExpr)
			if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
				return true
			}
			if !sameSimplePath(as.Lhs[0], bin.X) {
				return true
			}
			lhs = as.Lhs[0]
		default:
			return true
		}
		t := pass.TypesInfo.TypeOf(lhs)
		if t == nil || !lint.IsFloat(t) {
			return true
		}
		if accumulatorIsPerIteration(pass, lhs, rng, iterVars) {
			return true
		}
		pass.Reportf(as.Pos(),
			"float accumulation into %s inside range over map %s: map iteration order is randomized, so this sum is nondeterministic; iterate sorted keys instead",
			types.ExprString(lhs), types.ExprString(rng.X))
		return true
	})
}

// rangeVarObjects resolves the range statement's key/value variables.
func rangeVarObjects(pass *lint.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// accumulatorIsPerIteration reports whether the accumulation target cannot
// carry state across map iterations: either it mentions the loop's own
// key/value variables (each iteration owns its element), or its root
// variable is declared inside the loop body (reset every iteration).
func accumulatorIsPerIteration(pass *lint.Pass, lhs ast.Expr, rng *ast.RangeStmt, iterVars map[types.Object]bool) bool {
	usesIterVar := false
	ast.Inspect(lhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && iterVars[obj] {
				usesIterVar = true
			}
		}
		return true
	})
	if usesIterVar {
		return true
	}
	if id, ok := lhs.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil &&
			obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
			return true
		}
	}
	return false
}

// sameSimplePath reports whether a and b render to the same ident/selector
// path ("res.SeedL1" == "res.SeedL1").
func sameSimplePath(a, b ast.Expr) bool {
	pa, oka := lint.PathString(a)
	pb, okb := lint.PathString(b)
	return oka && okb && pa == pb
}
