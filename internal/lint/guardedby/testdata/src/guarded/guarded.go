// Package guarded exercises the guardedby analyzer: annotated fields,
// path-sensitive lock tracking, and every escape hatch.
package guarded

import "sync"

type registry struct {
	mu sync.RWMutex
	// items is the registry map.
	items map[string]int // guarded by mu
}

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// get holds the read lock through a defer: reads are satisfied by RLock.
func (r *registry) get(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.items[name]
}

func (r *registry) getUnlocked(name string) int {
	return r.items[name] // want `guarded by r.mu`
}

func (r *registry) putReadLocked(name string, v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.items[name] = v // want `requires r.mu held exclusively`
}

func (r *registry) put(name string, v int) {
	r.mu.Lock()
	r.items[name] = v
	r.mu.Unlock()
}

// earlyReturn unlocks on the error path and returns; the analysis drops
// that dead path, so the access after the branch is still covered.
func (c *counter) earlyReturn(abort bool) int {
	c.mu.Lock()
	if abort {
		c.mu.Unlock()
		return -1
	}
	c.n++
	c.mu.Unlock()
	return 0
}

// branchLeak locks on only one path: the access after the join is not
// covered on the other.
func (c *counter) branchLeak(flip bool) {
	if flip {
		c.mu.Lock()
	}
	c.n++ // want `not held on every path`
	if flip {
		c.mu.Unlock()
	}
}

// bumpLocked relies on the naming convention: *Locked methods are called
// with the receiver's mutexes already held.
func (c *counter) bumpLocked() {
	c.n++
}

// bumpHeld relies on the explicit directive instead.
//
//lint:holds c.mu
func (c *counter) bumpHeld() {
	c.n++
}

// newCounter owns its fresh allocation: constructors fill unshared values
// without locks.
func newCounter(start int) *counter {
	c := &counter{}
	c.n = start
	return c
}

// asyncBad spawns a goroutine inside the critical section; the literal does
// not inherit the lock, because it runs whenever the scheduler pleases.
func (c *counter) asyncBad() *sync.WaitGroup {
	var wg sync.WaitGroup
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.n++ // want `not held on every path`
	}()
	return &wg
}

// replayStyle documents a deliberate unlocked access with the project's
// ignore directive; the driver suppresses the finding.
func (c *counter) replayStyle() {
	//lint:ignore guardedby single-threaded replay, no concurrent reader exists yet
	c.n++
}
