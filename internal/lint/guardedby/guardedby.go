// Package guardedby enforces the mutex annotations on struct fields: a
// field whose declaration carries a `// guarded by <mu>` comment (where
// <mu> names a sync.Mutex or sync.RWMutex field of the same struct) may
// only be accessed while that mutex is held on every path reaching the
// access. Reads are satisfied by either Lock or RLock; assignments and
// ++/-- require the exclusive lock. This machine-checks the locking
// contracts the serve registry (graphs/pending maps, per-entry inflight
// slot, PPR cache and pool) and the WAL store state rely on.
//
// The analysis interprets each function body over structured control flow
// (lint.FlowInterp): lock state forks at branches and a fact survives a
// join only if it holds on every live path, so an early-return error path
// that unlocks does not poison the accesses after the branch. `defer
// mu.Unlock()` keeps the mutex held through the rest of the body, which is
// exactly its semantics.
//
// Escape hatches, each of which must be spelled in the source:
//   - a function whose doc comment carries `//lint:holds <path>[, <path>]`
//     is assumed to be called with those mutexes held (exclusively);
//   - a method whose name ends in "Locked" is assumed to hold every mutex
//     guarding fields of its receiver's struct — the project's naming
//     convention for lock-held helpers;
//   - locals that are provably this function's own fresh allocation (every
//     assignment to them is a composite literal or new()) are exempt: a
//     constructor may fill its unshared value without locks.
//
// Function literals are analyzed as separate functions with no held locks:
// a goroutine or stored callback does not inherit its creator's critical
// section. Literals that genuinely run under the caller's lock can use an
// ignore directive at the access.
package guardedby

import (
	"go/ast"
	"go/types"
	"maps"
	"regexp"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the guardedby pass.
var Analyzer = &lint.Analyzer{
	Name: "guardedby",
	Doc:  "enforces `// guarded by <mu>` field annotations: annotated fields are only touched with the mutex held on all paths",
	Run:  run,
}

// lock kinds in the abstract state.
const (
	kindShared    = 1
	kindExclusive = 2
)

// lockState maps a rendered mutex path ("e.mu") to how it is held.
type lockState map[string]int8

// annotation records one guarded field.
type annotation struct {
	mu    string        // sibling mutex field name
	owner *types.Struct // struct the field belongs to
}

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func run(pass *lint.Pass) error {
	annots := collectAnnotations(pass)
	if len(annots) == 0 {
		return nil
	}
	lint.FuncBodies(pass, func(decl *ast.FuncDecl, body *ast.BlockStmt, isLit bool) {
		fn := &funcCheck{pass: pass, annots: annots}
		entry := lockState{}
		if !isLit && decl != nil {
			entry = entryState(pass, decl, annots)
		}
		fn.owned = ownedLocals(pass, body)
		if isLit && decl != nil && decl.Body != nil {
			// A literal sees its enclosing function's freshly allocated
			// locals (a constructor's sort.Slice closure over the value it
			// is filling). Lock state does NOT carry over — ownership is
			// about the value never having been shared, which holds wherever
			// the literal runs.
			for obj := range ownedLocals(pass, decl.Body) {
				fn.owned[obj] = true
			}
		}
		interp := &lint.FlowInterp{
			Exec:  fn.exec,
			Clone: func(st any) any { return maps.Clone(st.(lockState)) },
			Merge: mergeLocks,
		}
		interp.WalkBody(body, entry)
	})
	return nil
}

// collectAnnotations parses every `// guarded by <mu>` field comment in the
// package, validating that the named mutex is a sibling field of a lockable
// type.
func collectAnnotations(pass *lint.Pass) map[types.Object]annotation {
	annots := make(map[types.Object]annotation)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotationOf(field)
				if mu == "" {
					continue
				}
				if !hasLockField(pass, st, mu) {
					pass.Reportf(field.Pos(),
						"field is annotated `guarded by %s`, but the struct has no sync.Mutex/sync.RWMutex field named %s", mu, mu)
					continue
				}
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					owner, _ := pass.TypesInfo.TypeOf(st).(*types.Struct)
					annots[obj] = annotation{mu: mu, owner: owner}
				}
			}
			return true
		})
	}
	return annots
}

// annotationOf extracts the guarded-by mutex name from a field's comments.
func annotationOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// hasLockField reports whether st declares a field named mu of a mutex type.
func hasLockField(pass *lint.Pass, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			t := pass.TypesInfo.TypeOf(field.Type)
			return lint.IsNamedType(t, "sync", "Mutex") || lint.IsNamedType(t, "sync", "RWMutex")
		}
	}
	return false
}

var holdsRE = regexp.MustCompile(`//lint:holds ([^\n]+)`)

// entryState derives a function's assumed-held locks from its doc directive
// and the *Locked naming convention.
func entryState(pass *lint.Pass, decl *ast.FuncDecl, annots map[types.Object]annotation) lockState {
	st := lockState{}
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if m := holdsRE.FindStringSubmatch(c.Text); m != nil {
				for _, p := range strings.Split(m[1], ",") {
					st[strings.TrimSpace(p)] = kindExclusive
				}
			}
		}
	}
	if strings.HasSuffix(decl.Name.Name, "Locked") && decl.Recv != nil && len(decl.Recv.List) == 1 {
		recv := decl.Recv.List[0]
		if len(recv.Names) == 1 {
			rt := pass.TypesInfo.TypeOf(recv.Type)
			if ptr, ok := rt.(*types.Pointer); ok {
				rt = ptr.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				if strct, ok := named.Underlying().(*types.Struct); ok {
					for _, ann := range annots {
						if ann.owner == strct {
							st[recv.Names[0].Name+"."+ann.mu] = kindExclusive
						}
					}
				}
			}
		}
	}
	return st
}

// ownedLocals finds locals whose every assignment is a fresh allocation
// (composite literal, optionally behind &, or new()): values this function
// owns exclusively until it shares them.
func ownedLocals(pass *lint.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	shared := make(map[types.Object]bool)
	note := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		if isFreshAlloc(pass, rhs) {
			fresh[obj] = true
		} else {
			shared[obj] = true
		}
	}
	lint.WalkExprs(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					note(id, as.Rhs[i])
				}
			}
		}
		return true
	})
	for obj := range shared {
		delete(fresh, obj)
	}
	return fresh
}

func isFreshAlloc(pass *lint.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if un, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(un.X)
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			_, builtin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
			return builtin
		}
	}
	return false
}

// funcCheck is the per-function analysis.
type funcCheck struct {
	pass   *lint.Pass
	annots map[types.Object]annotation
	owned  map[types.Object]bool
}

// exec interprets one statement or control-flow expression: it checks every
// guarded access it contains against the current lock state, then applies
// the statement's Lock/Unlock effects.
func (fc *funcCheck) exec(n ast.Node, stAny any) any {
	st := stAny.(lockState)
	writes := writeTargets(n)
	deferred := false
	if d, ok := n.(*ast.DeferStmt); ok {
		deferred = true
		n = d.Call
	}
	lint.WalkExprs(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.SelectorExpr:
			fc.checkAccess(c, writes[c], st)
		case *ast.CallExpr:
			if !deferred {
				applyLockCall(fc.pass, c, st)
			}
		}
		return true
	})
	return st
}

// writeTargets collects the selector expressions a statement assigns to.
func writeTargets(n ast.Node) map[*ast.SelectorExpr]bool {
	w := make(map[*ast.SelectorExpr]bool)
	add := func(e ast.Expr) {
		e = ast.Unparen(e)
		// A map/slice store (r.items[k] = v) mutates the container the
		// field holds: it is a write to the field for locking purposes.
		if idx, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(idx.X)
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			w[sel] = true
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			add(lhs)
		}
	case *ast.IncDecStmt:
		add(n.X)
	}
	return w
}

// checkAccess reports sel if it reads or writes an annotated field without
// the required lock.
func (fc *funcCheck) checkAccess(sel *ast.SelectorExpr, isWrite bool, st lockState) {
	selInfo, ok := fc.pass.TypesInfo.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return
	}
	ann, ok := fc.annots[selInfo.Obj()]
	if !ok {
		return
	}
	base, ok := lint.PathString(sel.X)
	if !ok {
		// The base is not a simple path (call result, index, ...): we cannot
		// name its mutex, so we cannot check it. Stay silent rather than
		// guess.
		return
	}
	if root, _, _ := strings.Cut(base, "."); fc.ownedRoot(sel.X, root) {
		return
	}
	muPath := base + "." + ann.mu
	held := st[muPath]
	switch {
	case held == 0:
		fc.pass.Reportf(sel.Pos(),
			"%s is guarded by %s, which is not held on every path to this access (lock it, or annotate the function with //lint:holds %s)",
			types.ExprString(sel), muPath, muPath)
	case isWrite && held == kindShared:
		fc.pass.Reportf(sel.Pos(),
			"write to %s requires %s held exclusively, but only the read lock is held here",
			types.ExprString(sel), muPath)
	}
}

// ownedRoot reports whether the access base is rooted in a local this
// function freshly allocated and still owns.
func (fc *funcCheck) ownedRoot(base ast.Expr, rootName string) bool {
	for {
		switch b := ast.Unparen(base).(type) {
		case *ast.SelectorExpr:
			base = b.X
			continue
		case *ast.Ident:
			obj := fc.pass.TypesInfo.ObjectOf(b)
			return obj != nil && obj.Name() == rootName && fc.owned[obj]
		default:
			return false
		}
	}
}

// applyLockCall mutates st for a mutex Lock/Unlock/RLock/RUnlock call.
func applyLockCall(pass *lint.Pass, call *ast.CallExpr, st lockState) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	var effect func(lockState, string)
	switch sel.Sel.Name {
	case "Lock":
		effect = func(st lockState, p string) { st[p] = kindExclusive }
	case "RLock":
		effect = func(st lockState, p string) { st[p] = kindShared }
	case "Unlock", "RUnlock":
		effect = func(st lockState, p string) { delete(st, p) }
	default:
		return
	}
	rt := pass.TypesInfo.TypeOf(sel.X)
	if !lint.IsNamedType(rt, "sync", "Mutex") && !lint.IsNamedType(rt, "sync", "RWMutex") {
		return
	}
	if path, ok := lint.PathString(sel.X); ok {
		effect(st, path)
	}
}

// mergeLocks is the conservative meet: a mutex survives the join only if
// both paths hold it, and a shared hold on either side demotes the result.
func mergeLocks(a, b any) any {
	la, lb := a.(lockState), b.(lockState)
	out := lockState{}
	for p, ka := range la {
		if kb, ok := lb[p]; ok {
			out[p] = min(ka, kb)
		}
	}
	return out
}
