package guardedby_test

import (
	"testing"

	"repro/internal/lint/guardedby"
	"repro/internal/lint/linttest"
)

func TestGuardedBy(t *testing.T) {
	linttest.Run(t, "testdata", guardedby.Analyzer, "guarded")
}
