package lint

import (
	"go/ast"
)

// FlowInterp is a small abstract interpreter over Go's structured control
// flow, shared by the path-sensitive analyzers (guardedby, walorder). It
// walks a function body in execution order, threading an analyzer-defined
// abstract state through every statement: branches fork a cloned state,
// surviving paths are joined with Merge, and paths that provably leave the
// function (return, panic, os.Exit) or jump away (break, continue, goto)
// are dropped so their effects cannot leak past the enclosing statement.
//
// The abstraction is deliberately structured rather than a full CFG: it has
// no fixed point for loops (a loop body is interpreted once from the loop's
// entry state, and the state after the loop is the merge of the entry state
// with the body's exit state). That is sound for the monotone facts these
// analyzers track — "mutex held" and "append happened" — as long as Merge
// is a conservative meet, because a fact is only believed after a statement
// if it holds on every surviving path into it.
type FlowInterp struct {
	// Exec is called once per executed simple statement (ExprStmt,
	// AssignStmt, IncDecStmt, DeclStmt, SendStmt, GoStmt, DeferStmt,
	// ReturnStmt) and once per evaluated control-flow expression (an if/for
	// condition, a switch tag, a range operand), with the abstract state at
	// that point. It returns the updated state. Exec must not retain st.
	Exec func(n ast.Node, st any) any
	// Clone deep-copies a state for a forked path.
	Clone func(st any) any
	// Merge joins the states of two surviving paths; it must be a
	// conservative meet (a fact survives only if it holds in both).
	Merge func(a, b any) any
}

// WalkBody interprets body starting from st and returns the exit state;
// the second result is false when no path reaches the end of body.
func (fi *FlowInterp) WalkBody(body *ast.BlockStmt, st any) (any, bool) {
	return fi.walkStmt(body, st)
}

// walkStmt interprets one statement. It returns the state after the
// statement and whether execution can fall through to the next one.
func (fi *FlowInterp) walkStmt(s ast.Stmt, st any) (any, bool) {
	switch s := s.(type) {
	case nil:
		return st, true

	case *ast.BlockStmt:
		live := true
		for _, sub := range s.List {
			st, live = fi.walkStmt(sub, st)
			if !live {
				return st, false
			}
		}
		return st, true

	case *ast.ExprStmt:
		st = fi.Exec(s, st)
		return st, !isTerminatingCall(s.X)

	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		return fi.Exec(s, st), true

	case *ast.ReturnStmt:
		return fi.Exec(s, st), false

	case *ast.BranchStmt:
		// break/continue/goto/fallthrough: the path leaves this statement
		// list. Dropping it is conservative for the after-loop merge (the
		// loop rule already merges in the entry state).
		return st, false

	case *ast.LabeledStmt:
		return fi.walkStmt(s.Stmt, st)

	case *ast.IfStmt:
		var live bool
		st, live = fi.walkStmt(s.Init, st)
		if !live {
			return st, false
		}
		st = fi.Exec(s.Cond, st)
		thenSt, thenLive := fi.walkStmt(s.Body, fi.Clone(st))
		elseSt, elseLive := st, true
		if s.Else != nil {
			elseSt, elseLive = fi.walkStmt(s.Else, fi.Clone(st))
		}
		switch {
		case thenLive && elseLive:
			return fi.Merge(thenSt, elseSt), true
		case thenLive:
			return thenSt, true
		case elseLive:
			return elseSt, true
		}
		return st, false

	case *ast.ForStmt:
		var live bool
		st, live = fi.walkStmt(s.Init, st)
		if !live {
			return st, false
		}
		if s.Cond != nil {
			st = fi.Exec(s.Cond, st)
		}
		bodySt, bodyLive := fi.walkStmt(s.Body, fi.Clone(st))
		if bodyLive {
			bodySt, _ = fi.walkStmt(s.Post, bodySt)
		}
		// The loop may run zero times (or exit via break from any point),
		// so the state after it is the conservative join with the entry.
		if bodyLive {
			st = fi.Merge(st, bodySt)
		}
		// `for { ... }` with no condition only exits via break/return;
		// treating it as fallthrough-with-entry-state stays conservative.
		return st, true

	case *ast.RangeStmt:
		st = fi.Exec(s.X, st)
		if bodySt, bodyLive := fi.walkStmt(s.Body, fi.Clone(st)); bodyLive {
			st = fi.Merge(st, bodySt)
		}
		return st, true

	case *ast.SwitchStmt:
		var live bool
		st, live = fi.walkStmt(s.Init, st)
		if !live {
			return st, false
		}
		if s.Tag != nil {
			st = fi.Exec(s.Tag, st)
		}
		return fi.walkClauses(s.Body, st, true)

	case *ast.TypeSwitchStmt:
		var live bool
		st, live = fi.walkStmt(s.Init, st)
		if !live {
			return st, false
		}
		st, _ = fi.walkStmt(s.Assign, st)
		return fi.walkClauses(s.Body, st, true)

	case *ast.SelectStmt:
		return fi.walkClauses(s.Body, st, false)

	default:
		// Unknown statement kind: pass the state through unchanged.
		return st, true
	}
}

// walkClauses interprets the case clauses of a switch or select body. With
// mayFallPast set (switch without default), the entry state joins the
// merge because no clause may match.
func (fi *FlowInterp) walkClauses(body *ast.BlockStmt, st any, mayFallPast bool) (any, bool) {
	var out any
	outLive := false
	hasDefault := false
	for _, clause := range body.List {
		caseSt := fi.Clone(st)
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				caseSt = fi.Exec(e, caseSt)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			var live bool
			caseSt, live = fi.walkStmt(c.Comm, caseSt)
			if !live {
				continue
			}
			stmts = c.Body
		default:
			continue
		}
		live := true
		for _, sub := range stmts {
			caseSt, live = fi.walkStmt(sub, caseSt)
			if !live {
				break
			}
		}
		if live {
			if !outLive {
				out, outLive = caseSt, true
			} else {
				out = fi.Merge(out, caseSt)
			}
		}
	}
	if mayFallPast && !hasDefault {
		if !outLive {
			return st, true
		}
		return fi.Merge(out, fi.Clone(st)), true
	}
	if !outLive {
		return st, false
	}
	return out, true
}

// isTerminatingCall reports whether expr is a call that never returns:
// panic, os.Exit, log.Fatal*, runtime.Goexit, or a testing Fatal.
func isTerminatingCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fn.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln",
			"t.Fatal", "t.Fatalf", "b.Fatal", "b.Fatalf":
			return true
		}
	}
	return false
}
