// Package wal exercises the closecheck analyzer, which is scoped to
// packages named wal and serve: Close/Sync errors discarded on the
// durability surface are flagged; checked, explicitly discarded, and
// annotated forms are not.
package wal

import "os"

type store struct {
	f *os.File
}

func (s *store) Sync() error { return s.f.Sync() }

func bad(path string) {
	f, _ := os.Create(path)
	f.Close() // want `Close error discarded`
}

func badDefer(path string) {
	f, _ := os.Create(path)
	defer f.Close() // want `Close error discarded`
}

func badGo(s *store) {
	go s.Sync() // want `Sync error discarded`
}

func good(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// explicitDiscard is allowed: the blank assignment is visible and
// greppable, which is what the check wants.
func explicitDiscard(f *os.File) {
	_ = f.Close()
}

// annotated carries the documented exemption.
func annotated(f *os.File) {
	//lint:ignore closecheck read-only descriptor, nothing buffered to flush
	f.Close()
}
