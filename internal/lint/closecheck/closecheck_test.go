package closecheck_test

import (
	"testing"

	"repro/internal/lint/closecheck"
	"repro/internal/lint/linttest"
)

func TestCloseCheck(t *testing.T) {
	linttest.Run(t, "testdata", closecheck.Analyzer, "wal")
}
