// Package closecheck flags discarded errors from Close and Sync calls in
// the durability-critical packages (wal, serve). On these paths a failed
// close or sync is a write that never reached the disk: ignoring it can
// acknowledge an append the next crash loses, or leak a descriptor whose
// buffered tail was dropped. Every Close/Sync error must be checked,
// explicitly assigned, or carry a `//lint:ignore closecheck <reason>`
// explaining why the error genuinely cannot matter (e.g. a file opened
// read-only, where close has nothing left to flush).
//
// Flagged: a call to an error-returning Close or Sync whose result is
// discarded — as a bare statement, under go, or under defer. An explicit
// `_ = f.Close()` is not flagged: the discard is visible and greppable,
// which is the point.
package closecheck

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the closecheck pass, scoped to packages named wal and serve:
// the project's durability boundary.
var Analyzer = &lint.Analyzer{
	Name: "closecheck",
	Doc:  "flags unchecked errors from Close/Sync on WAL and snapshot file paths",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if name := pass.Pkg.Name(); name != "wal" && name != "serve" {
		return nil
	}
	lint.Inspect(pass, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = n.Call
		case *ast.GoStmt:
			call = n.Call
		}
		if call == nil {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
			return true
		}
		if !returnsError(pass, call.Fun) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s error discarded on a durability path: check it, assign it explicitly, or //lint:ignore closecheck with the reason it cannot matter",
			types.ExprString(call.Fun))
		return true
	})
	return nil
}

// returnsError reports whether fun's signature includes an error result.
func returnsError(pass *lint.Pass, fun ast.Expr) bool {
	sig, ok := pass.TypesInfo.TypeOf(fun).(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}
