package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (in dir, "" = cwd) with
// `go list -deps -export`, then parses and type-checks each matched package
// from source, resolving every import — standard library and module-local
// alike — through the compiler export data `go list` reports from the build
// cache. Test files are not loaded: the analyzers guard production
// invariants, and the linttest harness loads its own testdata packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Name,Export,GoFiles,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Error != nil || lp.Incomplete {
			msg := "incomplete package"
			if lp.Error != nil {
				msg = lp.Error.Err
			}
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, msg)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewTypesInfo allocates a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
