package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePkg builds a Package with syntax only — applyIgnores never consults
// type information.
func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{PkgPath: "x", Fset: fset, Files: []*ast.File{f}, TypesInfo: NewTypesInfo()}
}

func diagAt(pkg *Package, analyzer string, line int) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: "x.go", Line: line},
		Message:  "synthetic finding",
	}
}

func TestIgnoreSameLine(t *testing.T) {
	pkg := parsePkg(t, `package x
func f() {
	risky() //lint:ignore walorder replay path, already durable
}
func risky() {}
`)
	out := applyIgnores(pkg, []Diagnostic{diagAt(pkg, "walorder", 3)})
	if len(out) != 0 {
		t.Fatalf("same-line directive should suppress, got %v", out)
	}
}

func TestIgnoreLineAbove(t *testing.T) {
	pkg := parsePkg(t, `package x
func f() {
	//lint:ignore guardedby constructor, value not shared yet
	risky()
}
func risky() {}
`)
	out := applyIgnores(pkg, []Diagnostic{diagAt(pkg, "guardedby", 4)})
	if len(out) != 0 {
		t.Fatalf("line-above directive should suppress, got %v", out)
	}
}

func TestIgnoreWrongAnalyzer(t *testing.T) {
	pkg := parsePkg(t, `package x
func f() {
	risky() //lint:ignore walorder replay path
}
func risky() {}
`)
	out := applyIgnores(pkg, []Diagnostic{diagAt(pkg, "closecheck", 3)})
	if len(out) != 1 {
		t.Fatalf("directive for another analyzer must not suppress, got %v", out)
	}
}

func TestIgnoreMultipleAnalyzers(t *testing.T) {
	pkg := parsePkg(t, `package x
func f() {
	risky() //lint:ignore walorder,closecheck both are deliberate here
}
func risky() {}
`)
	out := applyIgnores(pkg, []Diagnostic{
		diagAt(pkg, "walorder", 3),
		diagAt(pkg, "closecheck", 3),
	})
	if len(out) != 0 {
		t.Fatalf("comma list should suppress both, got %v", out)
	}
}

func TestIgnoreWithoutReasonIsReported(t *testing.T) {
	pkg := parsePkg(t, `package x
func f() {
	risky() //lint:ignore walorder
}
func risky() {}
`)
	out := applyIgnores(pkg, []Diagnostic{diagAt(pkg, "walorder", 3)})
	// The reasonless directive must not suppress, and must itself be
	// reported as a lintdirective finding.
	var sawDirective, sawOriginal bool
	for _, d := range out {
		switch d.Analyzer {
		case "lintdirective":
			sawDirective = true
			if !strings.Contains(d.Message, "malformed") {
				t.Errorf("unexpected directive message %q", d.Message)
			}
		case "walorder":
			sawOriginal = true
		}
	}
	if !sawDirective || !sawOriginal {
		t.Fatalf("want malformed-directive finding AND unsuppressed original, got %v", out)
	}
}

// TestRunAnalyzersOrdersAndSuppresses drives the full driver with a
// synthetic analyzer: findings come back sorted, suppressed lines dropped.
func TestRunAnalyzersOrdersAndSuppresses(t *testing.T) {
	pkg := parsePkg(t, `package x
func b() {}
func a() {} //lint:ignore probe declaration deliberately reported
`)
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports every function declaration",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Message != "func b" {
		t.Fatalf("want only the unsuppressed finding for b, got %v", diags)
	}
}
