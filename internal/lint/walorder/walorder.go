// Package walorder enforces write-ahead ordering in the serving layer: on
// any path that publishes a snapshot (a Store call on the entry's
// atomic.Pointer[Snapshot]), a WAL append must already have happened in
// that function. Publishing first would expose state to readers — and to
// followers streaming the log — that a crash could then lose, breaking the
// recovery invariant that every served version is reconstructible from the
// log. The check is per-function and path-sensitive: the append must
// dominate the publish, so an append inside only one branch does not
// satisfy a publish after the join.
//
// An append is a call to a walAppend* helper or to (wal.Store).Append.
// Replay and bootstrap paths legitimately publish without appending (the
// records they publish are already durable — they came from the log); each
// such site carries a `//lint:ignore walorder <reason>` documenting exactly
// that.
package walorder

import (
	"go/ast"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the walorder pass. It only fires in packages named "serve":
// the invariant is about the serving layer's publish points.
var Analyzer = &lint.Analyzer{
	Name: "walorder",
	Doc:  "in serve mutation paths, a WAL append must dominate every snapshot publish",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() != "serve" {
		return nil
	}
	lint.FuncBodies(pass, func(_ *ast.FuncDecl, body *ast.BlockStmt, _ bool) {
		interp := &lint.FlowInterp{
			Exec: func(n ast.Node, st any) any {
				appended := st.(bool)
				lint.WalkExprs(n, func(c ast.Node) bool {
					call, ok := c.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch {
					case isWalAppend(pass, call):
						appended = true
					case isSnapshotPublish(pass, call):
						if !appended {
							pass.Reportf(call.Pos(),
								"snapshot published without a preceding WAL append on this path: append first so a crash cannot lose served state (replay paths: //lint:ignore walorder <why already durable>)")
						}
					}
					return true
				})
				return appended
			},
			Clone: func(st any) any { return st },
			Merge: func(a, b any) any { return a.(bool) && b.(bool) },
		}
		interp.WalkBody(body, false)
	})
	return nil
}

// isWalAppend recognizes the project's WAL append calls: the serve-layer
// walAppend* helpers and the store's Append method itself.
func isWalAppend(pass *lint.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "walAppend")
	case *ast.SelectorExpr:
		if strings.HasPrefix(fun.Sel.Name, "walAppend") {
			return true
		}
		if fun.Sel.Name == "Append" {
			return lint.IsNamedType(pass.TypesInfo.TypeOf(fun.X), "wal", "Store")
		}
	}
	return false
}

// isSnapshotPublish recognizes `<ptr>.Store(snap)` where <ptr> is an
// atomic.Pointer and snap is a serve.Snapshot: the single publication point
// readers load from.
func isSnapshotPublish(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" || len(call.Args) != 1 {
		return false
	}
	if !lint.IsNamedType(pass.TypesInfo.TypeOf(sel.X), "atomic", "Pointer") {
		return false
	}
	return lint.IsNamedType(pass.TypesInfo.TypeOf(call.Args[0]), "serve", "Snapshot")
}
