// Package serve is a fixture mirror of the serving layer: the walorder
// analyzer fires only in packages named serve, on publishes through an
// atomic.Pointer[Snapshot].
package serve

import (
	"sync/atomic"

	"wal"
)

type Snapshot struct {
	Ranks   []float32
	Version uint64
}

type entry struct {
	snap atomic.Pointer[Snapshot]
}

type server struct {
	st *wal.Store
}

func (s *server) walAppendDelta(payload []byte) uint64 {
	lsn, _ := s.st.Append(1, payload)
	return lsn
}

// applyGood appends through the helper before publishing.
func (s *server) applyGood(e *entry, snap *Snapshot, payload []byte) {
	s.walAppendDelta(payload)
	e.snap.Store(snap)
}

// applyDirect appends through the store itself; the init statement of the
// if dominates the publish.
func (s *server) applyDirect(e *entry, snap *Snapshot, payload []byte) {
	if _, err := s.st.Append(2, payload); err != nil {
		return
	}
	e.snap.Store(snap)
}

func (s *server) publishBad(e *entry, snap *Snapshot) {
	e.snap.Store(snap) // want `snapshot published without a preceding WAL append`
}

// branchOnly appends on one path only: the publish after the join is not
// dominated.
func (s *server) branchOnly(e *entry, snap *Snapshot, payload []byte, flip bool) {
	if flip {
		s.walAppendDelta(payload)
	}
	e.snap.Store(snap) // want `snapshot published without a preceding WAL append`
}

// replayStyle is the documented exemption: the record being republished is
// already durable, and the directive says so.
func (s *server) replayStyle(e *entry, snap *Snapshot) {
	//lint:ignore walorder replay path: the record came from the log, it is already durable
	e.snap.Store(snap)
}

// otherPointer is fine: only Snapshot publishes are the WAL boundary.
func otherPointer(p *atomic.Pointer[wal.Store], st *wal.Store) {
	p.Store(st)
}
