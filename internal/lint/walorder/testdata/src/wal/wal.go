// Package wal is a fixture mirror of the real WAL store: the walorder
// analyzer recognizes (wal.Store).Append by package and type name.
package wal

type Store struct {
	next uint64
}

func (s *Store) Append(kind uint8, payload []byte) (uint64, error) {
	s.next++
	return s.next, nil
}
