package walorder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/walorder"
)

func TestWalOrder(t *testing.T) {
	linttest.Run(t, "testdata", walorder.Analyzer, "serve")
}
