// Package linttest is the project's analysistest: it loads a testdata
// package, runs one analyzer over it through the real driver (ignore
// directives included), and compares the diagnostics against `// want`
// expectations embedded in the source.
//
// Layout mirrors x/tools: each analyzer keeps fixture packages under
// testdata/src/<importpath>/, and the fixtures may import each other by
// those paths (plus anything in the standard library). An expectation is a
// comment on the offending line holding one or more quoted regular
// expressions:
//
//	for range m { sum += v } // want `float accumulation`
//
// Every diagnostic must match an expectation on its line and every
// expectation must be matched by at least one diagnostic.
package linttest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads testdata/src/<path> for each path (testdata is resolved
// relative to the caller's working directory, i.e. the analyzer's package
// directory under `go test`) and checks a's diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, testdata string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	ld := &loader{
		root:    filepath.Join(testdata, "src"),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*types.Package),
		exports: make(map[string]string),
	}
	ld.imp = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, ld.fset, pkg, diags)
	}
}

// loader type-checks testdata packages from source, resolving non-testdata
// imports through `go list -export` compiler export data (standard library
// and module packages alike — hermetic, no network).
type loader struct {
	root    string
	fset    *token.FileSet
	imp     types.Importer
	pkgs    map[string]*types.Package // memoized testdata packages
	exports map[string]string         // import path -> export data file
}

func (ld *loader) load(path string) (*lint.Package, error) {
	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files under %s", dir)
	}
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: (*testdataImporter)(ld)}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = tpkg
	return &lint.Package{
		PkgPath:   path,
		Dir:       dir,
		Fset:      ld.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// testdataImporter resolves imports for testdata packages: sibling fixture
// packages from source, everything else via export data.
type testdataImporter loader

func (ti *testdataImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(ti)
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if _, err := os.Stat(filepath.Join(ld.root, path)); err == nil {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.Types, nil
	}
	return ld.imp.Import(path)
}

// lookupExport resolves one non-testdata import path to its compiler
// export data, shelling out to `go list` on first sight of a path.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	if f, ok := ld.exports[path]; ok {
		return os.Open(f)
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-f", "{{.ImportPath}}={{.Export}}", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.Bytes())
	}
	for line := range strings.Lines(string(out)) {
		k, v, ok := strings.Cut(strings.TrimSpace(line), "=")
		if ok && v != "" {
			ld.exports[k] = v
		}
	}
	f, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// expectation is one parsed want pattern.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts want expectations from the fixture comments.
func parseWants(t *testing.T, fset *token.FileSet, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a space-separated sequence of Go string literals
// (double- or back-quoted).
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: want patterns must be quoted strings, got %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		lit := s[:end+2]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

// checkWants cross-matches diagnostics against expectations.
func checkWants(t *testing.T, fset *token.FileSet, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, pkg)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
