// Package stock carries self-contained editions of the four stock
// golang.org/x/tools/go/analysis passes the project bundles into
// pcpm-lint: nilness, shadow, lostcancel, and unusedwrite. The build is
// hermetic (no module downloads), so rather than importing x/tools these
// reimplement each pass's highest-signal core on the standard library's
// go/ast and go/types. Each file documents exactly what its edition
// catches and what the SSA-based original would additionally catch, so
// nobody mistakes a clean run for the full upstream analysis.
package stock
