package stock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Lostcancel flags discarding the cancel function returned by
// context.WithCancel, WithTimeout, or WithDeadline into the blank
// identifier. The dropped CancelFunc can never run, so the context's timer
// and child goroutines leak until the parent is done. This is the
// highest-frequency finding of the x/tools lostcancel pass; the CFG-based
// original additionally proves cancel unreached on some path to a return,
// which this edition does not attempt (Go already rejects a never-used
// cancel variable at compile time).
var Lostcancel = &lint.Analyzer{
	Name: "lostcancel",
	Doc:  "flags context.WithCancel/WithTimeout/WithDeadline cancel functions discarded to _",
	Run:  runLostcancel,
}

func runLostcancel(pass *lint.Pass) error {
	lint.Inspect(pass, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) {
			return true
		}
		// ctx, cancel := context.WithX(...) is the only shape: the two
		// results cannot be split.
		if len(as.Lhs) != 2 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isContextWithCancel(pass, call) {
			return true
		}
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(id.Pos(),
				"the cancel function returned by %s is discarded: the context's resources leak until the parent is done; call it (usually deferred)",
				callName(call))
		}
		return true
	})
	return nil
}

func isContextWithCancel(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
	default:
		return false
	}
	pkg, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName)
	return ok && pn.Imported().Path() == "context"
}

func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkg, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return pkg.Name + "." + sel.Sel.Name
		}
	}
	return "context.WithCancel"
}
