package stock_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/stock"
)

func TestNilness(t *testing.T) {
	linttest.Run(t, "testdata", stock.Nilness, "nilcheck")
}

func TestShadow(t *testing.T) {
	linttest.Run(t, "testdata", stock.Shadow, "shadowed")
}

func TestLostcancel(t *testing.T) {
	linttest.Run(t, "testdata", stock.Lostcancel, "cancel")
}

func TestUnusedwrite(t *testing.T) {
	linttest.Run(t, "testdata", stock.Unusedwrite, "copywrite")
}
