package stock

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Unusedwrite flags field writes that land on a copy and are therefore
// invisible to every other reference to the value. Two shapes, both lost
// at the next iteration or return:
//
//	for _, e := range entries { e.Count++ }   // entries is []T, e is a copy
//	func (s T) SetX(x int) { s.x = x }        // value receiver, s is a copy
//
// The SSA-based x/tools pass proves any write dead by absence of a
// subsequent read; this edition targets the two copy idioms above, which
// are the findings that matter in practice. A copy that is locally read
// back after the write (accumulating into a scratch struct) is exempt.
var Unusedwrite = &lint.Analyzer{
	Name: "unusedwrite",
	Doc:  "flags field writes to range-value and value-receiver copies that no one can observe",
	Run:  runUnusedwrite,
}

func runUnusedwrite(pass *lint.Pass) error {
	lint.Inspect(pass, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkCopyWrites(pass, n.Body, rangeValueCopy(pass, n), "is a copy of the range element; the write never reaches the collection")
		case *ast.FuncDecl:
			if obj := valueReceiver(pass, n); obj != nil && n.Body != nil {
				checkCopyWrites(pass, n.Body, obj, "is a value receiver; the write mutates a copy the caller never sees")
			}
		}
		return true
	})
	return nil
}

// rangeValueCopy returns the range value variable's object when iterating
// a slice/array of structs by value (the copying case); nil otherwise.
func rangeValueCopy(pass *lint.Pass, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	switch pass.TypesInfo.TypeOf(rng.X).Underlying().(type) {
	case *types.Slice, *types.Array:
	default:
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, isStruct := obj.Type().Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return obj
}

// valueReceiver returns the receiver object when decl is a method on a
// struct value (not a pointer); nil otherwise.
func valueReceiver(pass *lint.Pass, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
		return nil
	}
	name := decl.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(name)
	if obj == nil {
		return nil
	}
	if _, isStruct := obj.Type().Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return obj
}

// checkCopyWrites reports `copyVar.field = x` / `copyVar.field++` writes in
// body, unless the copy is also read afterwards (scratch-struct use) or its
// address is taken (the copy itself became shared state).
func checkCopyWrites(pass *lint.Pass, body ast.Node, copyVar types.Object, why string) {
	if copyVar == nil {
		return
	}
	isCopyField := func(e ast.Expr) *ast.SelectorExpr {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != copyVar {
			return nil
		}
		return sel
	}
	// First pass: any read of the copy (use outside a write LHS) or
	// address-taking exempts the whole body — it is a scratch value.
	writes := map[ast.Node]*ast.SelectorExpr{}
	reads := 0
	lint.WalkExprs(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel := isCopyField(lhs); sel != nil {
					writes[n] = sel
				}
			}
		case *ast.IncDecStmt:
			if sel := isCopyField(n.X); sel != nil {
				writes[n] = sel
			}
		case *ast.UnaryExpr:
			// &copyVar or &copyVar.field: the copy escapes, writes count.
			if sel := isCopyField(n.X); sel != nil {
				reads++
			}
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == copyVar {
				reads++
			}
		case *ast.Ident:
			if pass.TypesInfo.ObjectOf(n) == copyVar && !isWriteBase(body, n) {
				reads++
			}
		}
		return true
	})
	if reads > 0 {
		return
	}
	for stmt, sel := range writes {
		pass.Reportf(stmt.Pos(),
			"write to %s is lost: %s %s", types.ExprString(sel), sel.X.(*ast.Ident).Name, why)
	}
}

// isWriteBase reports whether id appears only as the base of a field-write
// LHS (copyVar.f = x) rather than as a genuine read.
func isWriteBase(body ast.Node, id *ast.Ident) bool {
	write := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && ast.Unparen(sel.X) == id {
					write = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && ast.Unparen(sel.X) == id {
				write = true
			}
		}
		return !write
	})
	return write
}
