package stock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Nilness flags dereferences of a pointer on a branch where a comparison
// just proved it nil: `if p == nil { use p.f }` and the mirrored
// `if p != nil { } else { use p.f }`. This is the syntactic core of the
// x/tools nilness pass; the SSA original additionally tracks nil facts
// through phi nodes and across blocks, which this edition does not attempt.
// A branch that reassigns the tested variable is skipped entirely.
var Nilness = &lint.Analyzer{
	Name: "nilness",
	Doc:  "flags dereference of a pointer on a branch that proved it nil",
	Run:  runNilness,
}

func runNilness(pass *lint.Pass) error {
	lint.Inspect(pass, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		obj, eq := nilTest(pass, ifs.Cond)
		if obj == nil {
			return true
		}
		var branch ast.Stmt
		if eq {
			branch = ifs.Body
		} else {
			branch = ifs.Else
		}
		if branch == nil || assignsTo(pass, branch, obj) {
			return true
		}
		reportDerefs(pass, branch, obj)
		return true
	})
	return nil
}

// nilTest decodes `x == nil` / `x != nil` where x is a pointer-typed
// variable, returning its object and whether the comparison was ==.
func nilTest(pass *lint.Pass, cond ast.Expr) (types.Object, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(pass, x) {
		x, y = y, x
	}
	if !isNilIdent(pass, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil, false
	}
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
		return nil, false
	}
	return obj, bin.Op == token.EQL
}

func isNilIdent(pass *lint.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.ObjectOf(id).(*types.Nil)
	return isNil
}

// assignsTo reports whether the branch writes obj (making later uses safe
// from this pass's point of view).
func assignsTo(pass *lint.Pass, branch ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(branch, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// reportDerefs flags *x and x.f uses of the proven-nil pointer within the
// branch (skipping nested function literals, which run later if at all).
func reportDerefs(pass *lint.Pass, branch ast.Stmt, obj types.Object) {
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.ObjectOf(id) == obj
	}
	lint.WalkExprs(branch, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StarExpr:
			if isObj(n.X) {
				pass.Reportf(n.Pos(), "nil dereference: *%s on a branch where %s == nil", obj.Name(), obj.Name())
			}
		case *ast.SelectorExpr:
			if isObj(n.X) {
				pass.Reportf(n.Pos(), "nil dereference: %s.%s on a branch where %s == nil", obj.Name(), n.Sel.Name, obj.Name())
			}
		}
		return true
	})
}
