// Package copywrite exercises the stock unusedwrite edition.
package copywrite

type item struct {
	count int
	name  string
}

func bad(items []item) {
	for _, it := range items {
		it.count++ // want `write to it.count is lost`
	}
}

// byIndex is the fix: index into the collection itself.
func byIndex(items []item) {
	for i := range items {
		items[i].count++
	}
}

// scratch is fine: the copy is read back after the write, so it is a
// deliberate local scratch value.
func scratch(items []item) []item {
	var out []item
	for _, it := range items {
		it.count = 0
		out = append(out, it)
	}
	return out
}

// Bump writes through a value receiver: the caller's struct never changes.
func (it item) Bump() {
	it.count++ // want `write to it.count is lost`
}

// WithName is the builder idiom: the modified copy is returned, so the
// write is observed.
func (it item) WithName(n string) item {
	it.name = n
	return it
}

// SetCount is the fix for Bump: a pointer receiver.
func (it *item) SetCount(n int) {
	it.count = n
}
