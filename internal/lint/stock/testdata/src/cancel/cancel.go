// Package cancel exercises the stock lostcancel edition.
package cancel

import (
	"context"
	"time"
)

func bad(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want `cancel function`
	return ctx
}

func badTimeout(parent context.Context) context.Context {
	ctx, _ := context.WithTimeout(parent, time.Second) // want `cancel function`
	return ctx
}

func good(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	return ctx, cancel
}

func goodDeferred(parent context.Context) error {
	ctx, cancel := context.WithDeadline(parent, time.Now().Add(time.Second))
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}
