// Package shadowed exercises the stock shadow edition.
package shadowed

import "errors"

func bad(flip bool) error {
	err := errors.New("outer")
	if flip {
		err := errors.New("inner") // want `shadows the err`
		_ = err
	}
	return err
}

// overwritten is fine: the outer err is rewritten after the shadow scope
// and before the read, so nothing the shadow hid is observable.
func overwritten(flip bool) error {
	err := errors.New("outer")
	if flip {
		err := errors.New("inner")
		_ = err
	}
	err = errors.New("rewritten")
	return err
}

// neverReadAgain is fine: the outer variable is dead after the shadow.
func neverReadAgain(flip bool) error {
	err := errors.New("outer")
	if err != nil && flip {
		err := errors.New("inner")
		return err
	}
	return nil
}
