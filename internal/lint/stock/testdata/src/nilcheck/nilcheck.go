// Package nilcheck exercises the stock nilness edition.
package nilcheck

type node struct {
	next *node
	val  int
}

func bad(n *node) int {
	if n == nil {
		return n.val // want `nil dereference`
	}
	return n.val
}

func badElse(n *node) int {
	if n != nil {
		return n.val
	} else {
		return n.val // want `nil dereference`
	}
}

func badStar(p *int) int {
	if p == nil {
		return *p // want `nil dereference`
	}
	return *p
}

// reassigned is fine: the branch replaces the pointer before using it.
func reassigned(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}

// guarded is fine: the dereference sits on the branch that proved non-nil.
func guarded(n *node) int {
	if n != nil {
		return n.next.val
	}
	return 0
}
