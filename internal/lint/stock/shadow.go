package stock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Shadow flags a `:=` that redeclares a variable of an enclosing function
// scope when the outer variable is still read after the shadowing scope
// ends — the case where the shadow plausibly swallowed an assignment the
// later read depended on (the classic `if x, err := f(); ...` losing err).
// Like the x/tools pass, declarations whose outer variable is never used
// again are not flagged: harmless re-use of a name is idiomatic Go.
var Shadow = &lint.Analyzer{
	Name: "shadow",
	Doc:  "flags := declarations that shadow an outer variable still used after the inner scope ends",
	Run:  runShadow,
}

func runShadow(pass *lint.Pass) error {
	// Idents that are pure write targets (LHS of = or :=): overwriting the
	// outer variable after the shadow scope closes is not an observation of
	// the hidden value, so those positions must not count as "used again".
	writes := make(map[*ast.Ident]bool)
	lint.Inspect(pass, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writes[id] = true
				}
			}
		}
		return true
	})
	lint.Inspect(pass, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			checkShadow(pass, id, writes)
		}
		return true
	})
	return nil
}

func checkShadow(pass *lint.Pass, id *ast.Ident, writes map[*ast.Ident]bool) {
	inner, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok || inner.Parent() == nil || inner.Parent().Parent() == nil {
		return
	}
	// Look the name up starting from the scope ENCLOSING the declaration:
	// whatever it finds is what this := hides.
	_, outerObj := inner.Parent().Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outer == inner {
		return
	}
	// Only function-local shadowing: hiding a package-level name (or an
	// import) is vet's business, and shadowing across functions is
	// impossible.
	if outer.Parent() == pass.Pkg.Scope() || outer.IsField() {
		return
	}
	// Dangerous only if the outer variable is read again after the shadow's
	// scope is gone, with no intervening overwrite — otherwise nothing
	// observable was hidden. The kill test is positional, not path-based: a
	// conditional overwrite between the scope end and the read suppresses
	// the report even though some path skips it, trading missed reports for
	// the quiet that lets the pass gate CI.
	innerScopeEnd := inner.Parent().End()
	for useID, useObj := range pass.TypesInfo.Uses {
		if useObj != outer || useID.Pos() <= innerScopeEnd || writes[useID] {
			continue
		}
		killed := false
		for wID, wObj := range pass.TypesInfo.Uses {
			if wObj == outer && writes[wID] && wID.Pos() > innerScopeEnd && wID.Pos() < useID.Pos() {
				killed = true
				break
			}
		}
		if !killed {
			pass.Reportf(id.Pos(),
				"declaration of %q shadows the %s declared at %s, which is read again at %s",
				id.Name, id.Name,
				pass.Fset.Position(outer.Pos()), pass.Fset.Position(useID.Pos()))
			return
		}
	}
}
