// Package snapshotalias flags writes into slices reached from a
// serve.Snapshot. A snapshot is published by storing a pointer into an
// atomic.Pointer; from that moment concurrent readers hold references to
// its rank vector, top-k prefix, and graph adjacency arrays, and any write
// into those arrays is a data race that silently corrupts served answers.
// The serving contract is copy-on-write: build a fresh snapshot, publish
// it whole.
//
// Flagged, anywhere a Snapshot is in scope:
//   - element writes through a snapshot-reaching chain:
//     snap.Ranks[i] = x, snap.Graph.Adj[j]++, e.snap.Load().Ranks[i] -= y
//   - writes into slices returned by snapshot accessors:
//     snap.TopK(5)[0] = entry
//   - copy with a snapshot-reaching destination: copy(snap.Ranks, fresh)
//   - the same writes through a local alias: r := snap.Ranks; r[i] = x
//
// Alias tracking is intra-function and syntactic; an alias laundered
// through a helper call escapes the net (reviewers still own that), and a
// genuine copy (append([]T(nil), s...), slices.Clone) is recognized and
// exempt. Snapshot construction before publish legitimately fills fields;
// whole-field assignment (snap.Ranks = vec) is therefore not flagged —
// only element writes, which are exactly the mutations that alias into
// state a reader may already hold.
package snapshotalias

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the snapshotalias pass.
var Analyzer = &lint.Analyzer{
	Name: "snapshotalias",
	Doc:  "flags writes into rank/adjacency slices reached from a serve.Snapshot (published snapshots are immutable)",
	Run:  run,
}

func run(pass *lint.Pass) error {
	lint.FuncBodies(pass, func(_ *ast.FuncDecl, body *ast.BlockStmt, _ bool) {
		checkFunc(pass, body)
	})
	return nil
}

func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	tainted := taintedLocals(pass, body)
	reaches := func(e ast.Expr) bool { return reachesSnapshot(pass, tainted, e) }

	lint.WalkExprs(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportElementWrite(pass, lhs, reaches)
			}
		case *ast.IncDecStmt:
			reportElementWrite(pass, n.X, reaches)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if isBuiltin(pass, id) && reaches(n.Args[0]) {
					pass.Reportf(n.Pos(),
						"copy into %s writes a slice reached from a serve.Snapshot: published snapshots are immutable, build a fresh slice instead",
						types.ExprString(n.Args[0]))
				}
			}
		}
		return true
	})
}

// reportElementWrite flags lhs when it is an element write (index or
// dereference at the end of the chain) into snapshot-reached memory.
func reportElementWrite(pass *lint.Pass, lhs ast.Expr, reaches func(ast.Expr) bool) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	// Writing into a map reached from a snapshot would be just as bad, but
	// snapshots hold none; restrict to slices/arrays to keep the message
	// honest.
	bt := pass.TypesInfo.TypeOf(idx.X)
	if bt == nil {
		return
	}
	switch bt.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
	default:
		return
	}
	if reaches(idx.X) {
		pass.Reportf(lhs.Pos(),
			"write into %s mutates memory reached from a serve.Snapshot: published snapshots are immutable, copy-on-write instead",
			types.ExprString(lhs))
	}
}

// reachesSnapshot reports whether e's evaluation chain passes through a
// value of type serve.Snapshot (or a tainted local alias of one).
func reachesSnapshot(pass *lint.Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		if t := pass.TypesInfo.TypeOf(expr); t != nil && lint.IsNamedType(t, "serve", "Snapshot") {
			found = true
			return false
		}
		if id, ok := expr.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// taintedLocals collects local variables assigned (anywhere in the
// function, flow-insensitively) from a snapshot-reaching slice expression:
// r := snap.Ranks, top := snap.TopK(8). Recognized copies — append onto a
// non-snapshot base, slices.Clone — do not taint. The set is closed
// transitively so r2 := r is caught too.
func taintedLocals(pass *lint.Pass, body *ast.BlockStmt) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	for {
		grew := false
		lint.WalkExprs(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil || tainted[obj] {
					continue
				}
				rhs := ast.Unparen(as.Rhs[i])
				if t := pass.TypesInfo.TypeOf(rhs); t == nil {
					continue
				} else if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
					continue
				}
				if isRecognizedCopy(pass, rhs) {
					continue
				}
				if reachesSnapshot(pass, tainted, rhs) {
					tainted[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return tainted
		}
	}
}

// isRecognizedCopy reports whether call is an idiom that yields freshly
// allocated backing: append with a non-snapshot first argument, or
// slices.Clone.
func isRecognizedCopy(pass *lint.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		// append(nilOrFresh, snapSlice...) copies; append(snapSlice, x)
		// aliases (and may write shared backing) — only the base decides.
		if fn.Name == "append" && isBuiltin(pass, fn) && len(call.Args) > 0 {
			return !reachesSnapshot(pass, nil, call.Args[0])
		}
		if fn.Name == "make" && isBuiltin(pass, fn) {
			return true
		}
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok && pkg.Name == "slices" &&
			(fn.Sel.Name == "Clone" || fn.Sel.Name == "Concat") {
			return true
		}
	}
	return false
}

func isBuiltin(pass *lint.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok
}
