package snapshotalias_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/snapshotalias"
)

func TestSnapshotAlias(t *testing.T) {
	linttest.Run(t, "testdata", snapshotalias.Analyzer, "snapuse")
}
