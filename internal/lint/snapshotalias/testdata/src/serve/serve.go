// Package serve is a fixture mirror of the real serving package: the
// snapshotalias analyzer matches the Snapshot type by package name, so this
// testdata package stands in for repro/internal/serve.
package serve

type Graph struct {
	Adj []uint32
}

type Snapshot struct {
	Graph *Graph
	Ranks []float32
	topk  []uint32
}

// TopK returns a prefix of the cached top-k ranking — aliasing the
// snapshot's own array, exactly like the real accessor.
func (s *Snapshot) TopK(k int) []uint32 { return s.topk[:k] }
