// Package snapuse exercises the snapshotalias analyzer: element writes
// into memory reached from a published serve.Snapshot are flagged; fresh
// copies and construction of unpublished state are not.
package snapuse

import "serve"

func mutateDirect(snap *serve.Snapshot, i int) {
	snap.Ranks[i] = 0   // want `write into`
	snap.Graph.Adj[i]++ // want `write into`
}

func mutateViaAccessor(snap *serve.Snapshot) {
	snap.TopK(5)[0] = 7 // want `write into`
}

func mutateViaAlias(snap *serve.Snapshot, i int) {
	r := snap.Ranks
	r[i] = 1 // want `write into`
	r2 := r
	r2[i] = 2 // want `write into`
}

func copyInto(snap *serve.Snapshot, fresh []float32) {
	copy(snap.Ranks, fresh) // want `copy into`
}

// readOnly is fine: loads never mutate shared backing.
func readOnly(snap *serve.Snapshot) float32 {
	return snap.Ranks[0]
}

// freshCopy is fine: append onto a nil base allocates new backing, so the
// writes land on this function's own memory.
func freshCopy(snap *serve.Snapshot, i int) []float32 {
	r := append([]float32(nil), snap.Ranks...)
	r[i] = 0
	return r
}

// buildFresh is fine: filling a snapshot before it is published is the
// copy-on-write pattern the analyzer exists to protect.
func buildFresh(g *serve.Graph, n int) *serve.Snapshot {
	ranks := make([]float32, n)
	ranks[0] = 1
	return &serve.Snapshot{Graph: g, Ranks: ranks}
}
