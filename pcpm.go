// Package pcpm is the public facade of the Partition-Centric Processing
// Methodology (PCPM) PageRank library, a from-scratch Go reproduction of
// "Accelerating PageRank using Partition-Centric Processing" (Lakhotia,
// Kannan, Prasanna — USENIX ATC 2018).
//
// The facade wraps the implementation packages under internal/ (graph
// substrate, partitioner, PNG layout, engines, traffic simulator) behind a
// small surface:
//
//	g, _ := pcpm.LoadEdgeList(file)
//	res, _ := pcpm.Run(g, pcpm.Options{Method: pcpm.MethodPCPM, Iterations: 20})
//	for _, e := range pcpm.TopK(res.Ranks, 10) { ... }
//
// Engines: MethodPDPR (pull baseline, Algorithm 1), MethodPush (push with
// atomics), MethodBVGAS (binning vertex-centric GAS, Algorithm 5),
// MethodPCPMCSR (partition-centric without the PNG layout, Algorithm 2),
// and MethodPCPM (the paper's contribution: PNG scatter, Algorithm 3, plus
// branch-avoiding gather, Algorithm 4).
//
// Beyond the paper's global PageRank, RunPersonalized / RunPersonalizedBatch
// answer Personalized PageRank queries (per-seed-set rank vectors) with the
// partition-centric forward-push engine in internal/ppr.
package pcpm

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"repro/internal/comp"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/graph"
	"repro/internal/ppr"
	"repro/internal/scc"
)

// Method names a PageRank engine.
type Method string

// The available engines.
const (
	MethodPDPR    Method = "pdpr"
	MethodPush    Method = "push"
	MethodBVGAS   Method = "bvgas"
	MethodPCPMCSR Method = "pcpm-csr"
	MethodPCPM    Method = "pcpm"
	// MethodComponentwise is the SCC-condensation solver (internal/comp):
	// the graph decomposes into strongly connected components, the
	// condensation DAG is walked level by level, and each component is
	// solved against the frozen ranks of its upstream components — closed
	// form for singletons, a local Gauss-Seidel kernel for small
	// components, and the PCPM engine restricted to the component subgraph
	// for large ones. Unlike the step-wise engines it always runs to
	// convergence: Options.Iterations is ignored, Options.Tolerance (or its
	// 1e-9 default) is the aggregate L1 target, and MaxIterations caps each
	// component's solve. CompactIDs does not apply to the restricted
	// engines and is ignored.
	MethodComponentwise Method = "componentwise"
)

// Methods lists every engine in baseline-to-contribution order.
func Methods() []Method {
	return []Method{MethodPDPR, MethodPush, MethodBVGAS, MethodPCPMCSR, MethodPCPM, MethodComponentwise}
}

// Options configure a Run. Zero values select the paper's defaults:
// PCPM engine, damping 0.85, 256 KB partitions, GOMAXPROCS workers,
// 20 iterations, dangling mass leaking as in the paper's formulation.
type Options struct {
	// Method selects the engine (default MethodPCPM).
	Method Method
	// Damping is the PageRank damping factor d (default 0.85).
	Damping float64
	// PartitionBytes sets the PCPM partition / BVGAS bin width in bytes of
	// 4-byte vertex values; must be a power of two (default 256 KB).
	PartitionBytes int
	// Workers bounds engine parallelism (default GOMAXPROCS).
	Workers int
	// Iterations runs a fixed number of iterations (default 20) unless
	// Tolerance is set.
	Iterations int
	// Tolerance, if positive, runs until the L1 rank change drops below it
	// (capped at MaxIterations).
	Tolerance float64
	// MaxIterations caps convergence mode (default 1000).
	MaxIterations int
	// RedistributeDangling spreads dangling-node mass uniformly each
	// iteration so ranks sum to 1; the default (false) reproduces the
	// paper's formulation, which lets that mass leak.
	RedistributeDangling bool
	// BranchingGather selects the Algorithm 2 gather ablation for the PCPM
	// engines instead of the branch-avoiding Algorithm 4 gather.
	BranchingGather bool
	// CompactIDs enables the §6 extension: 16-bit partition-local
	// destination IDs in the PCPM gather stream (partitions must be at
	// most 128 KB).
	CompactIDs bool
}

// Result reports a completed PageRank computation.
type Result struct {
	// Ranks holds the final (unscaled) PageRank values, indexed by node.
	Ranks []float32
	// Iterations actually executed.
	Iterations int
	// Delta is the L1 change of the final iteration.
	Delta float64
	// Stats carries cumulative per-phase wall-clock times. For
	// MethodComponentwise only Total (the solve phase) and Iterations are
	// populated.
	Stats core.PhaseStats
	// PreprocessTime is the one-off setup cost (PNG construction for PCPM,
	// bin sizing for BVGAS, SCC decomposition + condensation scheduling for
	// the componentwise solver; zero for the pull/push baselines).
	PreprocessTime time.Duration
	// CompressionRatio is r = |E|/|E'| for the PCPM engines, 0 otherwise.
	CompressionRatio float64
	// Method that produced the result.
	Method Method
	// Componentwise carries the componentwise solver's breakdown — the
	// condensation shape, kernel counts, and the decompose / schedule /
	// solve phase split. Nil for every other method.
	Componentwise *ComponentwiseBreakdown
}

// ComponentwiseBreakdown re-exports the componentwise solver's per-run
// summary (components, levels, kernel counts, per-phase wall-clock times).
type ComponentwiseBreakdown = comp.Breakdown

func (o Options) coreConfig() core.Config {
	cfg := core.Config{
		Damping:        o.Damping,
		Workers:        o.Workers,
		PartitionBytes: o.PartitionBytes,
	}
	if o.RedistributeDangling {
		cfg.Dangling = core.DanglingRedistribute
	}
	if o.BranchingGather {
		cfg.Gather = core.GatherBranching
	}
	cfg.CompactIDs = o.CompactIDs
	return cfg
}

// NewEngine constructs the engine selected by the options without running
// it, for callers that want to drive iterations themselves. The
// componentwise solver is not a step-wise engine — it schedules many
// component solves — so MethodComponentwise is only reachable through Run.
func NewEngine(g *graph.Graph, o Options) (core.Engine, error) {
	cfg := o.coreConfig()
	switch o.Method {
	case MethodComponentwise:
		return nil, fmt.Errorf("pcpm: method %q has no step-wise engine; use Run", o.Method)
	case MethodPDPR:
		return core.NewPDPR(g, cfg)
	case MethodPush:
		return core.NewPush(g, cfg)
	case MethodBVGAS:
		return core.NewBVGAS(g, cfg)
	case MethodPCPMCSR:
		return core.NewPCPMCSR(g, cfg)
	case MethodPCPM, "":
		return core.NewPCPM(g, cfg)
	default:
		return nil, fmt.Errorf("pcpm: unknown method %q", o.Method)
	}
}

// Run executes PageRank on g with the given options.
func Run(g *graph.Graph, o Options) (*Result, error) {
	if o.Method == MethodComponentwise {
		return runComponentwise(g, o, nil)
	}
	e, err := NewEngine(g, o)
	if err != nil {
		return nil, err
	}
	res := &Result{Method: Method(e.Name()), PreprocessTime: e.PreprocessTime()}
	if p, ok := e.(*core.PCPM); ok {
		res.CompressionRatio = p.CompressionRatio()
	}
	if o.Tolerance > 0 {
		maxIters := o.MaxIterations
		if maxIters <= 0 {
			maxIters = 1000
		}
		res.Iterations, res.Delta = core.RunToConvergence(e, o.Tolerance, maxIters)
	} else {
		iters := o.Iterations
		if iters <= 0 {
			iters = 20
		}
		for i := 0; i < iters; i++ {
			res.Delta = e.Step()
		}
		res.Iterations = iters
	}
	res.Ranks = e.Ranks()
	res.Stats = e.Stats()
	return res, nil
}

// RunWithSCC is Run with a precomputed decomposition of g, which the
// componentwise method reuses instead of decomposing again — the serving
// layer already holds one per snapshot for its component stats. dec must
// describe exactly g; every other method ignores it.
func RunWithSCC(g *Graph, o Options, dec *SCCResult) (*Result, error) {
	if o.Method == MethodComponentwise {
		return runComponentwise(g, o, dec)
	}
	return Run(g, o)
}

// runComponentwise maps the facade options onto the componentwise solver.
// Iterations has no meaning for a convergence-only method and is ignored;
// MaxIterations caps each component's solve.
func runComponentwise(g *graph.Graph, o Options, dec *scc.Result) (*Result, error) {
	co := comp.Options{
		Damping:         o.Damping,
		Tolerance:       o.Tolerance,
		MaxIterations:   o.MaxIterations,
		PartitionBytes:  o.PartitionBytes,
		Workers:         o.Workers,
		BranchingGather: o.BranchingGather,
		SCC:             dec,
	}
	if o.RedistributeDangling {
		co.Dangling = core.DanglingRedistribute
	}
	cr, err := comp.Run(g, co)
	if err != nil {
		return nil, err
	}
	bd := cr.Breakdown
	return &Result{
		Ranks:      cr.Ranks,
		Iterations: cr.Iterations,
		Delta:      cr.Delta,
		Stats: core.PhaseStats{
			Total:      bd.Solve,
			Iterations: cr.Iterations,
		},
		PreprocessTime: bd.Decompose + bd.Schedule,
		Method:         MethodComponentwise,
		Componentwise:  &bd,
	}, nil
}

// PPROptions is the combined engine + query configuration for the one-shot
// personalized entry points (see internal/ppr): damping, the epsilon
// L1-termination knob, TopK, partition size for the frontier bins, worker
// count, and the dense-fallback threshold. Engine-reusing callers split the
// two halves: PPREngineOptions fix the scratch shape at NewPPREngine,
// PPRRunOptions carry everything query-specific per Run call.
type PPROptions = ppr.Options

// PPREngineOptions fix a PPREngine's graph-shaped scratch (partition size
// for the frontier bins, worker capacity). Nothing query-specific lives
// here, which is what makes engines poolable.
type PPREngineOptions = ppr.EngineOptions

// PPRRunOptions carry the query-specific parameters of one personalized
// PageRank run: damping, epsilon, top-k, per-run worker clamp, the
// dense-fallback threshold, and the round cap.
type PPRRunOptions = ppr.RunOptions

// PPREngine is reusable personalized PageRank scratch for one graph
// (~25 bytes/node). One engine is NOT safe for concurrent Run calls; pool
// several for concurrent serving, as internal/serve does.
type PPREngine = ppr.Engine

// NewPPREngine builds a reusable personalized PageRank engine for g. Query
// parameters are supplied per Engine.Run call, so one engine (or a pool)
// serves queries with arbitrary per-call epsilon, top-k, and damping.
func NewPPREngine(g *Graph, o PPREngineOptions) (*PPREngine, error) {
	return ppr.New(g, o)
}

// PPRResult is one completed personalized PageRank query: the full score
// vector, the optional top-K entries, round/push counts, and the residual
// L1 error bound.
type PPRResult = ppr.Result

// PPREntry pairs a vertex with its personalized score.
type PPREntry = ppr.Entry

// RunPersonalized computes the Personalized PageRank vector for a uniform
// distribution over the given seed vertices, using residual forward push
// with a partition-centric frontier (and a dense power-iteration fallback
// when the frontier saturates). The result's ResidualL1 bounds the L1
// distance to the exact answer by o.Epsilon.
func RunPersonalized(g *graph.Graph, seeds []uint32, o PPROptions) (*PPRResult, error) {
	return ppr.Run(g, seeds, o)
}

// RunPersonalizedBatch evaluates many seed sets over one graph, scheduling
// queries dynamically across workers with each query single-threaded —
// the right trade for batch traffic, where cross-query parallelism beats
// intra-query parallelism. Results align positionally with seedSets.
func RunPersonalizedBatch(g *graph.Graph, seedSets [][]uint32, o PPROptions) ([]*PPRResult, error) {
	return ppr.RunBatch(g, seedSets, o)
}

// Edge re-exports the graph substrate's directed edge, the element type of
// edge-delta batches.
type Edge = graph.Edge

// EdgeDelta is one batch of edge insertions and deletions for a dynamic
// graph; see internal/delta for the exact matching semantics (deletions
// remove one parallel instance each, endpoints must already exist).
type EdgeDelta = delta.EdgeDelta

// DeltaOptions configure ApplyEdgeDelta: the damping the input ranks were
// computed with, the repair's epsilon (its own L1 error bound), the
// fallback threshold on dirtied residual mass, and engine shape knobs.
type DeltaOptions = delta.Options

// DeltaResult reports one applied edge delta: the rebuilt graph, the
// repaired ranks (nil when the repair fell back and the caller must rerun
// its engine), and drain statistics.
type DeltaResult = delta.Result

// ApplyEdgeDelta applies a batch of edge insertions/deletions to g and
// repairs ranks incrementally: residuals are seeded at the vertices whose
// out-neighborhoods changed (the sparse perturbation ((1−α)/α)(M′−M)p) and
// drained with the partition-centric forward-push engine, so small deltas
// cost far less than a from-scratch engine run. When the dirtied mass
// exceeds DeltaOptions.FallbackL1 the result reports FellBack and carries
// only the rebuilt graph — run the engine on it instead.
func ApplyEdgeDelta(g *Graph, ranks []float32, d EdgeDelta, o DeltaOptions) (*DeltaResult, error) {
	return delta.Apply(g, ranks, d, o)
}

// SCCResult re-exports the strongly-connected-component decomposition
// record (vertex→component map, condensation DAG, topological levels)
// produced by DecomposeSCC and consumed by DeltaOptions.Components.
type SCCResult = scc.Result

// DecomposeSCC computes g's SCC decomposition plus its condensation DAG
// grouped into topological levels, using up to workers goroutines (0 means
// GOMAXPROCS). Reuse the result across ApplyEdgeDelta calls to scope
// incremental repairs to the dirtied components' downstream closure.
func DecomposeSCC(g *Graph, workers int) *SCCResult { return scc.Decompose(g, workers) }

// GraphStatsWithComponents is ComputeStats plus the SCC summary fields
// (Components, LargestComponent) — the extended paper Table 4 record the
// serving layer publishes. It discards the decomposition; callers that
// also need it use DecomposeSCC + GraphStatsFromSCC.
func GraphStatsWithComponents(g *Graph, workers int) GraphStats {
	return scc.ComputeStats(g, workers)
}

// GraphStatsFromSCC annotates ComputeStats with an existing decomposition
// of g, so one DecomposeSCC serves both the stats record and a
// componentwise RunWithSCC.
func GraphStatsFromSCC(g *Graph, dec *SCCResult) GraphStats {
	return scc.StatsFor(g, dec)
}

// RankEntry re-exports core.RankEntry for TopK consumers.
type RankEntry = core.RankEntry

// TopK returns the k highest-ranked nodes in descending order.
func TopK(ranks []float32, k int) []RankEntry { return core.TopK(ranks, k) }

// Graph re-exports the graph substrate's immutable CSR/CSC graph so facade
// consumers (and the serving layer) need not import internal packages.
type Graph = graph.Graph

// GraphStats re-exports the graph summary record (nodes, edges, degree
// extremes, dangling count).
type GraphStats = graph.Stats

// NewGraphBuilder returns a builder for assembling a graph edge by edge.
func NewGraphBuilder(n int) *graph.Builder { return graph.NewBuilder(n) }

// LoadEdgeList parses a "src dst [weight]" text edge list; node count is
// inferred from the largest ID.
func LoadEdgeList(r io.Reader) (*graph.Graph, error) {
	return graph.ReadEdgeList(r, graph.BuildOptions{})
}

// LoadGraph reads a graph in either supported format, sniffing the binary
// magic from the stream's first bytes rather than trusting a file extension.
// Anything that is not the binary format is parsed as a text edge list; an
// empty stream is an error (a likely client mistake), not an empty graph.
func LoadGraph(r io.Reader) (*graph.Graph, error) {
	// A small buffer suffices for the 8-byte sniff; the format readers do
	// their own bulk buffering (ReadBinary reuses this *bufio.Reader).
	br := bufio.NewReaderSize(r, 4096)
	head, err := br.Peek(8)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("pcpm: sniffing graph format: %w", err)
	}
	if len(head) == 0 {
		return nil, fmt.Errorf("pcpm: empty graph stream")
	}
	if graph.SniffBinary(head) {
		return graph.ReadBinary(br)
	}
	return graph.ReadEdgeList(br, graph.BuildOptions{})
}

// LoadBinary reads a graph in the repo's binary format.
func LoadBinary(r io.Reader) (*graph.Graph, error) { return graph.ReadBinary(r) }

// SaveBinary writes a graph in the repo's binary format.
func SaveBinary(w io.Writer, g *graph.Graph) error { return graph.WriteBinary(w, g) }

// SaveEdgeList writes a graph as a text edge list.
func SaveEdgeList(w io.Writer, g *graph.Graph) error { return graph.WriteEdgeList(w, g) }
