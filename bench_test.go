// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus per-engine micro-benchmarks and the DESIGN.md §5
// ablations. Experiment-level benchmarks regenerate the corresponding
// table through internal/harness at a reduced scale; run
//
//	go test -bench=. -benchmem
//
// for the whole suite, or cmd/pcpm-bench for full-scale tables.
package pcpm

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/memsim"
	"repro/internal/partition"
	"repro/internal/png"
	"repro/internal/reorder"
)

// benchExpOpts shrinks experiment-level benchmarks (~7K–29K-node analogs).
func benchExpOpts() harness.Options {
	return harness.Options{Divisor: 4096, Workers: 0, Iterations: 4, Seed: 42}
}

// benchEngineOpts sizes the per-engine micro-benchmarks (~28K–115K nodes).
func benchEngineOpts() harness.Options {
	return harness.Options{Divisor: 1024, Workers: 0, Iterations: 4, Seed: 42}
}

// benchExperiment runs a harness experiment once per b.N iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := harness.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchExpOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table -----------------------------------------

func BenchmarkTable4Datasets(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkTable5Time(b *testing.B)          { benchExperiment(b, "table5") }
func BenchmarkTable6GOrder(b *testing.B)        { benchExperiment(b, "table6") }
func BenchmarkTable7LabelTraffic(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable8Preprocessing(b *testing.B) { benchExperiment(b, "table8") }

// --- One benchmark per paper figure -----------------------------------------

func BenchmarkFig1VertexTraffic(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig6ModelSweep(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7GTEPS(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8BytesPerEdge(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9Bandwidth(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10Energy(b *testing.B)           { benchExperiment(b, "fig10") }
func BenchmarkFig11CompressionSweep(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12CommSweep(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13TimeSweep(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkFig14PhaseSweep(b *testing.B)       { benchExperiment(b, "fig14") }

// --- Extension benchmark (paper §6 future work) ------------------------------

func BenchmarkExtCompactIDs(b *testing.B)  { benchExperiment(b, "compact") }
func BenchmarkExtEdgeBalance(b *testing.B) { benchExperiment(b, "edgebalance") }

// --- Per-engine iteration benchmarks (the Table 5 / Fig 7 measurement at
// micro scale: one op = one PageRank iteration; throughput metric is GTEPS).

func loadBenchDataset(b *testing.B, name string) *graph.Graph {
	b.Helper()
	spec, err := harness.DatasetByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := harness.LoadDataset(spec, benchEngineOpts())
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchEngine(b *testing.B, g *graph.Graph, method Method) {
	b.Helper()
	e, err := NewEngine(g, Options{Method: method, PartitionBytes: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	e.Step()                     // warm-up: writes destination IDs, touches all arrays
	b.SetBytes(g.NumEdges() * 8) // ~2 indices per edge as a traffic proxy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.StopTimer()
	gteps := float64(g.NumEdges()) / 1e9 / b.Elapsed().Seconds() * float64(b.N)
	b.ReportMetric(gteps, "GTEPS")
}

func BenchmarkEngines(b *testing.B) {
	for _, ds := range []string{"gplus", "pld", "web", "kron", "twitter", "sd1"} {
		g := loadBenchDataset(b, ds)
		for _, m := range Methods() {
			b.Run(fmt.Sprintf("%s/%s", ds, m), func(b *testing.B) {
				benchEngine(b, g, m)
			})
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §5) -------------------------------------

// BenchmarkAblationPNG compares the PNG scatter (Algorithm 3) against the
// Algorithm 2 CSR scatter on the kron analog.
func BenchmarkAblationPNG(b *testing.B) {
	g := loadBenchDataset(b, "kron")
	b.Run("png-scatter", func(b *testing.B) { benchEngine(b, g, MethodPCPM) })
	b.Run("csr-scatter", func(b *testing.B) { benchEngine(b, g, MethodPCPMCSR) })
}

// BenchmarkAblationBranch compares branch-avoiding (Algorithm 4) and
// branching gathers.
func BenchmarkAblationBranch(b *testing.B) {
	g := loadBenchDataset(b, "kron")
	run := func(b *testing.B, branching bool) {
		e, err := NewEngine(g, Options{
			Method: MethodPCPM, PartitionBytes: 64 << 10, BranchingGather: branching,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.Step()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	}
	b.Run("branch-avoiding", func(b *testing.B) { run(b, false) })
	b.Run("branching", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationSched compares dynamic and static partition scheduling.
func BenchmarkAblationSched(b *testing.B) {
	g := loadBenchDataset(b, "twitter")
	run := func(b *testing.B, sched core.SchedKind) {
		e, err := core.NewPCPM(g, core.Config{PartitionBytes: 64 << 10, Sched: sched})
		if err != nil {
			b.Fatal(err)
		}
		e.Step()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	}
	b.Run("dynamic", func(b *testing.B) { run(b, core.SchedDynamic) })
	b.Run("static", func(b *testing.B) { run(b, core.SchedStatic) })
}

// --- Substrate micro-benchmarks ----------------------------------------------

// BenchmarkPNGBuild measures PNG construction (the Table 8 preprocessing).
func BenchmarkPNGBuild(b *testing.B) {
	g := loadBenchDataset(b, "kron")
	layout, err := partition.FromBytes(g.NumNodes(), 64<<10)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(g.NumEdges() * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := png.Build(g, layout, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemsimAccess measures raw simulator throughput.
func BenchmarkMemsimAccess(b *testing.B) {
	sim, err := memsim.New(memsim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Read(uint64(i*4)&0xFFFFFF, 4, memsim.StreamValues)
	}
}

// BenchmarkGOrder measures the reordering preprocessing cost the paper
// cites as the drawback of locality optimizations.
func BenchmarkGOrder(b *testing.B) {
	g, err := gen.Copying(gen.CopyingConfig{
		N: 20000, OutDegree: 10, CopyProb: 0.5, Locality: 0.4, Seed: 3,
	}, graph.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reorder.GOrder(g, reorder.DefaultGOrderConfig())
	}
}

// BenchmarkGraphBuild measures CSR+CSC construction throughput.
func BenchmarkGraphBuild(b *testing.B) {
	edges := make([]graph.Edge, 1<<20)
	r := gen.RandomPermutation(1<<20, 5)
	for i := range edges {
		edges[i] = graph.Edge{Src: r[i] % (1 << 18), Dst: r[(i+7)%len(r)] % (1 << 18)}
	}
	b.SetBytes(int64(len(edges)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.FromEdges(1<<18, edges, false, graph.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
