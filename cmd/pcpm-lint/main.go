// Command pcpm-lint is the project's multichecker: it runs every
// project-invariant analyzer (floatmaporder, snapshotalias, guardedby,
// walorder, closecheck) together with the bundled general-purpose passes
// (nilness, shadow, lostcancel, unusedwrite) over the packages matching its
// arguments and exits nonzero on any finding. CI runs it as a gating step:
//
//	go run ./cmd/pcpm-lint ./...
//
// Findings print one per line as file:line:col: message [analyzer].
// Suppress a deliberate pattern with `//lint:ignore <analyzer> <reason>` on
// or directly above the flagged line; the reason is mandatory and malformed
// or unused directives are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/closecheck"
	"repro/internal/lint/floatmaporder"
	"repro/internal/lint/guardedby"
	"repro/internal/lint/snapshotalias"
	"repro/internal/lint/stock"
	"repro/internal/lint/walorder"
)

var analyzers = []*lint.Analyzer{
	floatmaporder.Analyzer,
	snapshotalias.Analyzer,
	guardedby.Analyzer,
	walorder.Analyzer,
	closecheck.Analyzer,
	stock.Nilness,
	stock.Shadow,
	stock.Lostcancel,
	stock.Unusedwrite,
}

func main() {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pcpm-lint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := lint.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pcpm-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
