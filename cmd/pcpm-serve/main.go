// Command pcpm-serve runs the rank-serving HTTP daemon: it loads graphs (at
// startup from -graph flags, or over HTTP), computes PageRank with the PCPM
// engine, caches the rank vectors, and answers top-k / per-vertex queries
// while recomputes run in the background.
//
// Usage:
//
//	pcpm-serve -addr :8080 -graph web=web.bin -graph kron=kron.txt
//	curl -XPOST --data-binary @edges.txt 'localhost:8080/v1/graphs?name=mine'
//	curl 'localhost:8080/v1/graphs/mine/topk?k=5'
//	curl -XPOST 'localhost:8080/v1/graphs/mine/ppr' -d '{"seeds":[42],"k":10}'
//	curl -XPOST 'localhost:8080/v1/graphs/mine/edges' \
//	     -d '{"insert":[[3,9],[7,1]],"delete":[[4,2]]}'
//	curl -XPOST 'localhost:8080/v1/graphs/mine/recompute?wait=true' \
//	     -d '{"damping":0.9}'
//
// Graph uploads are capped by -max-upload (default 1 GiB); larger bodies
// get 413 Request Entity Too Large. Personalized PageRank answers are
// cached per graph in an LRU sized by -ppr-cache; cache misses borrow
// engine scratch from a per-graph pool sized by -ppr-pool. Batched edge
// updates repair the published ranks incrementally (falling back to a full
// engine run when a batch dirties too much rank mass) and are capped at
// -max-delta-edges changes per request.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pcpm "repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		method    = flag.String("method", "pcpm", "default engine: pdpr|push|bvgas|pcpm-csr|pcpm")
		iters     = flag.Int("iters", 20, "default fixed iteration count")
		tol       = flag.Float64("tol", 0, "default convergence tolerance (0 = fixed iterations)")
		damping   = flag.Float64("damping", 0.85, "default damping factor")
		partBytes = flag.Int("partition", 256<<10, "default partition/bin size in bytes")
		workers   = flag.Int("workers", 0, "default worker count (0 = GOMAXPROCS)")
		maxUpload = flag.Int64("max-upload", 1<<30,
			"largest accepted graph upload in bytes; POST /v1/graphs bodies past this are rejected with 413 Request Entity Too Large")
		pprCache = flag.Int("ppr-cache", 128, "personalized-PageRank answers cached per graph (LRU)")
		pprPool  = flag.Int("ppr-pool", 4,
			"idle personalized-PageRank engines retained per graph for cache misses (~25 bytes/node each; negative disables pooling)")
		maxDelta = flag.Int("max-delta-edges", 100000,
			"largest edge-update batch (insertions+deletions) accepted by POST /v1/graphs/{name}/edges; bigger batches get 413 (negative removes the limit)")
		verbose = flag.Bool("v", false, "debug logging")
	)
	var preload []string
	flag.Func("graph", "preload a graph as name=path (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return errors.New("want name=path")
		}
		preload = append(preload, v)
		return nil
	})
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv := serve.New(serve.Config{
		Defaults: pcpm.Options{
			Method:         pcpm.Method(*method),
			Damping:        *damping,
			Iterations:     *iters,
			Tolerance:      *tol,
			PartitionBytes: *partBytes,
			Workers:        *workers,
		},
		Logger:            logger,
		MaxUploadBytes:    *maxUpload,
		PPRCacheSize:      *pprCache,
		PPREnginePoolSize: *pprPool,
		MaxDeltaEdges:     *maxDelta,
	})

	for _, spec := range preload {
		name, path, _ := strings.Cut(spec, "=")
		if err := loadFile(srv, name, path); err != nil {
			logger.Error("preload failed", "graph", name, "path", path, "error", err)
			os.Exit(1)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "graphs", srv.NumGraphs())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown incomplete", "error", err)
		os.Exit(1)
	}
	logger.Info("bye")
}

// loadFile ingests one preload graph, auto-detecting its format.
func loadFile(srv *serve.Server, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := pcpm.LoadGraph(f)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	_, err = srv.AddGraph(name, g, pcpm.Options{}, false)
	return err
}
