// Command pcpm-serve runs the rank-serving HTTP daemon: it loads graphs (at
// startup from -graph flags, or over HTTP), computes PageRank with the PCPM
// engine, caches the rank vectors, and answers top-k / per-vertex queries
// while recomputes run in the background.
//
// Usage:
//
//	pcpm-serve -addr :8080 -graph web=web.bin -graph kron=kron.txt
//	curl -XPOST --data-binary @edges.txt 'localhost:8080/v1/graphs?name=mine'
//	curl 'localhost:8080/v1/graphs/mine/topk?k=5'
//	curl -XPOST 'localhost:8080/v1/graphs/mine/ppr' -d '{"seeds":[42],"k":10}'
//	curl -XPOST 'localhost:8080/v1/graphs/mine/edges' \
//	     -d '{"insert":[[3,9],[7,1]],"delete":[[4,2]]}'
//	curl -XPOST 'localhost:8080/v1/graphs/mine/recompute?wait=true' \
//	     -d '{"damping":0.9}'
//
// Graph uploads are capped by -max-upload (default 1 GiB); larger bodies
// get 413 Request Entity Too Large. Personalized PageRank answers are
// cached per graph in an LRU sized by -ppr-cache; cache misses borrow
// engine scratch from a per-graph pool sized by -ppr-pool. Batched edge
// updates repair the published ranks incrementally (falling back to a full
// engine run when a batch dirties too much rank mass) and are capped at
// -max-delta-edges changes per request.
//
// With -follow the daemon runs as a read-only replica: it bootstraps from
// the leader's snapshots, tails its WAL stream, serves every read endpoint
// from its own copies, and answers writes with 503 + the leader's address.
// Giving a follower -data-dir keeps the directory dormant until promotion:
// POST /v1/repl/promote (or SIGUSR1, or `pcpm-serve -promote <url>` from
// another shell) stops the tail loop, adopts the dir as a fresh WAL seeded
// with the follower's current state, and starts accepting writes in place:
//
//	pcpm-serve -addr :8081 -follow http://leader:8080 -data-dir /var/f1
//	curl 'localhost:8081/v1/repl/status'
//	# leader died:
//	pcpm-serve -promote http://localhost:8081
//	# re-aim the other follower:
//	curl -XPOST 'localhost:8082/v1/repl/reaim' -d '{"leader":"http://localhost:8081"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pcpm "repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		method    = flag.String("method", "pcpm", "default engine: pdpr|push|bvgas|pcpm-csr|pcpm")
		iters     = flag.Int("iters", 20, "default fixed iteration count")
		tol       = flag.Float64("tol", 0, "default convergence tolerance (0 = fixed iterations)")
		damping   = flag.Float64("damping", 0.85, "default damping factor")
		partBytes = flag.Int("partition", 256<<10, "default partition/bin size in bytes")
		workers   = flag.Int("workers", 0, "default worker count (0 = GOMAXPROCS)")
		maxUpload = flag.Int64("max-upload", 1<<30,
			"largest accepted graph upload in bytes; POST /v1/graphs bodies past this are rejected with 413 Request Entity Too Large")
		pprCache = flag.Int("ppr-cache", 128, "personalized-PageRank answers cached per graph (LRU)")
		pprPool  = flag.Int("ppr-pool", 4,
			"idle personalized-PageRank engines retained per graph for cache misses (~25 bytes/node each; negative disables pooling)")
		maxDelta = flag.Int("max-delta-edges", 100000,
			"largest edge-update batch (insertions+deletions) accepted by POST /v1/graphs/{name}/edges; bigger batches get 413 (negative removes the limit)")
		dataDir = flag.String("data-dir", "",
			"durable data directory (write-ahead log + snapshots); empty keeps graphs memory-only and a restart loses them")
		fsync = flag.String("fsync", "always",
			"WAL fsync policy with -data-dir: always (every append), never, or an interval like 100ms")
		checkpointEvery = flag.Duration("checkpoint-every", 5*time.Minute,
			"interval between snapshot checkpoints with -data-dir (0 disables periodic checkpoints; one is always taken on graceful shutdown)")
		follow = flag.String("follow", "",
			"run as a read-only follower of the leader at this base URL (e.g. http://leader:8080); incompatible with -graph. With -data-dir the directory lies dormant as the promotion target")
		followPoll = flag.Duration("follow-poll", 25*time.Second,
			"long-poll window per WAL tail request in follower mode")
		promoteURL = flag.String("promote", "",
			"client mode: ask the follower at this base URL to promote itself to leader, print the report, and exit")
		verbose = flag.Bool("v", false, "debug logging")
	)
	var preload []string
	flag.Func("graph", "preload a graph as name=path (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return errors.New("want name=path")
		}
		preload = append(preload, v)
		return nil
	})
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *promoteURL != "" {
		os.Exit(runPromote(*promoteURL))
	}

	fsyncEvery, err := parseFsync(*fsync)
	if err != nil {
		logger.Error("bad -fsync", "error", err)
		os.Exit(2)
	}
	// A follower's state is exactly the leader's log, so preloaded graphs
	// would diverge from it. A -data-dir, by contrast, is allowed: Recover
	// leaves it untouched and promotion adopts it.
	if *follow != "" && len(preload) > 0 {
		logger.Error("-follow is incompatible with -graph: a follower's graphs come from the leader")
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Defaults: pcpm.Options{
			Method:         pcpm.Method(*method),
			Damping:        *damping,
			Iterations:     *iters,
			Tolerance:      *tol,
			PartitionBytes: *partBytes,
			Workers:        *workers,
		},
		Logger:            logger,
		MaxUploadBytes:    *maxUpload,
		PPRCacheSize:      *pprCache,
		PPREnginePoolSize: *pprPool,
		MaxDeltaEdges:     *maxDelta,
		DataDir:           *dataDir,
		FsyncEvery:        fsyncEvery,
		FollowAddr:        *follow,
		FollowPollWait:    *followPoll,
	})

	// Warm recovery before preload and before accepting traffic: load the
	// newest snapshots, replay the log tail, fail closed on corruption.
	report, err := srv.Recover()
	if err != nil {
		logger.Error("recovery failed", "data-dir", *dataDir, "error", err)
		os.Exit(1)
	}
	recovered := make(map[string]bool)
	for _, info := range srv.List() {
		recovered[info.Name] = true
	}

	for _, spec := range preload {
		name, path, _ := strings.Cut(spec, "=")
		if recovered[name] {
			// The durable copy (which may carry applied edge deltas) wins
			// over re-ingesting the original file.
			logger.Info("preload skipped: recovered from data dir", "graph", name)
			continue
		}
		if err := loadFile(srv, name, path); err != nil {
			logger.Error("preload failed", "graph", name, "path", path, "error", err)
			os.Exit(1)
		}
	}
	switch {
	case *dataDir != "" && *follow != "":
		logger.Info("data dir dormant until promotion", "data-dir", *dataDir)
	case *dataDir != "":
		logger.Info("durability on", "data-dir", *dataDir, "fsync", *fsync,
			"recovered_graphs", report.Graphs, "replayed", report.Replayed,
			"drift_recomputes", report.DriftRecomputes)
	}

	var stopCheckpoints chan struct{}
	if *dataDir != "" && *checkpointEvery > 0 {
		stopCheckpoints = make(chan struct{})
		go func() {
			t := time.NewTicker(*checkpointEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := srv.Checkpoint(); err != nil {
						logger.Error("checkpoint failed", "error", err)
					}
				case <-stopCheckpoints:
					return
				}
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGUSR1 promotes a follower in place (same path as the HTTP endpoint;
	// harmless on a server that is already a leader).
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			rep, err := srv.Promote()
			if err != nil {
				logger.Error("promotion failed", "error", err)
				continue
			}
			logger.Info("promotion signal handled", "promoted", rep.Promoted,
				"cut_lsn", rep.CutLSN, "next_lsn", rep.NextLSN, "graphs", rep.Graphs)
		}
	}()

	followDone := make(chan struct{})
	if *follow != "" {
		go func() {
			defer close(followDone)
			logger.Info("following", "leader", *follow)
			if err := srv.Follow(ctx); err != nil && !errors.Is(err, context.Canceled) {
				logger.Error("follower loop failed", "error", err)
			}
		}()
	} else {
		close(followDone)
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "graphs", srv.NumGraphs())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	stop() // cancels the follower loop's ctx
	<-followDone
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown incomplete", "error", err)
		os.Exit(1)
	}
	if stopCheckpoints != nil {
		close(stopCheckpoints)
	}
	// Final checkpoint + store close, so the next start replays (almost)
	// nothing. A crash skips this — that is what recovery is for.
	if err := srv.CloseDurable(); err != nil {
		logger.Error("durable close failed", "error", err)
		os.Exit(1)
	}
	logger.Info("bye")
}

// runPromote is the -promote client mode: one POST to the target's promote
// endpoint, report to stdout, exit code by HTTP status.
func runPromote(base string) int {
	resp, err := http.Post(strings.TrimRight(base, "/")+"/v1/repl/promote", "application/json", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promote:", err)
		return 1
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	os.Stdout.Write(body)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "promote: %s answered %s\n", base, resp.Status)
		return 1
	}
	return 0
}

// parseFsync maps the -fsync flag to serve.Config.FsyncEvery: "always" →
// 0 (fsync every append), "never" → -1, otherwise a positive duration.
func parseFsync(v string) (time.Duration, error) {
	switch v {
	case "always":
		return 0, nil
	case "never":
		return -1, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("want always, never, or a positive duration, got %q", v)
	}
	return d, nil
}

// loadFile ingests one preload graph, auto-detecting its format.
func loadFile(srv *serve.Server, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := pcpm.LoadGraph(f)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	_, err = srv.AddGraph(name, g, pcpm.Options{}, false)
	return err
}
