// Command pcpm-pagerank computes PageRank on a graph file with a chosen
// engine and prints the top-ranked nodes plus phase timings.
//
// Usage:
//
//	pcpm-pagerank -in graph.bin -method pcpm -iters 20 -top 10
//	pcpm-pagerank -in edges.txt -method pdpr -tol 1e-8
package main

import (
	"flag"
	"fmt"
	"os"

	pcpm "repro"
)

func main() {
	var (
		in        = flag.String("in", "", "input graph (.txt edge list or binary)")
		method    = flag.String("method", "pcpm", "engine: pdpr|push|bvgas|pcpm-csr|pcpm")
		iters     = flag.Int("iters", 20, "fixed iteration count (ignored when -tol is set)")
		tol       = flag.Float64("tol", 0, "run to convergence below this L1 delta")
		top       = flag.Int("top", 10, "how many top-ranked nodes to print")
		partBytes = flag.Int("partition", 256<<10, "partition/bin size in bytes (power of two)")
		workers   = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		damping   = flag.Float64("damping", 0.85, "damping factor")
		redist    = flag.Bool("redistribute", false, "redistribute dangling mass (rank sums to 1)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "pcpm-pagerank:", err)
		os.Exit(1)
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()

	g, err := pcpm.LoadGraph(f)
	if err != nil {
		fail(err)
	}
	s := g.ComputeStats()
	fmt.Printf("graph: %d nodes, %d edges, avg degree %.2f, %d dangling\n",
		s.Nodes, s.Edges, s.AvgDegree, s.Dangling)

	res, err := pcpm.Run(g, pcpm.Options{
		Method:               pcpm.Method(*method),
		Damping:              *damping,
		PartitionBytes:       *partBytes,
		Workers:              *workers,
		Iterations:           *iters,
		Tolerance:            *tol,
		RedistributeDangling: *redist,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("method: %s, iterations: %d, final L1 delta: %.3g\n",
		res.Method, res.Iterations, res.Delta)
	if res.CompressionRatio > 0 {
		fmt.Printf("compression ratio r = %.2f, preprocessing %v\n",
			res.CompressionRatio, res.PreprocessTime.Round(1e3))
	}
	per := res.Stats.PerIteration()
	if per.Scatter > 0 || per.Gather > 0 {
		fmt.Printf("per iteration: scatter %v, gather %v, total %v\n",
			per.Scatter.Round(1e3), per.Gather.Round(1e3), per.Total.Round(1e3))
	} else {
		fmt.Printf("per iteration: %v\n", per.Total.Round(1e3))
	}
	gteps := float64(g.NumEdges()) / 1e9 / per.Total.Seconds()
	fmt.Printf("throughput: %.3f GTEPS\n", gteps)

	fmt.Printf("top %d nodes:\n", *top)
	for i, e := range pcpm.TopK(res.Ranks, *top) {
		fmt.Printf("  %2d. node %-10d rank %.6g\n", i+1, e.Node, e.Rank)
	}
}
