// Command pcpm-pagerank computes PageRank on a graph file with a chosen
// engine and prints the top-ranked nodes plus phase timings. With -seeds it
// computes Personalized PageRank for those seed vertices (partition-centric
// forward push) instead of the global ranking.
//
// Usage:
//
//	pcpm-pagerank -in graph.bin -method pcpm -iters 20 -top 10
//	pcpm-pagerank -in edges.txt -method pdpr -tol 1e-8
//	pcpm-pagerank -in graph.bin -seeds 42,1337 -top 10 -epsilon 1e-7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	pcpm "repro"
)

func main() {
	var (
		in        = flag.String("in", "", "input graph (.txt edge list or binary)")
		method    = flag.String("method", "pcpm", "engine: pdpr|push|bvgas|pcpm-csr|pcpm|componentwise")
		iters     = flag.Int("iters", 20, "fixed iteration count (ignored when -tol is set)")
		tol       = flag.Float64("tol", 0, "run to convergence below this L1 delta")
		top       = flag.Int("top", 10, "how many top-ranked nodes to print")
		partBytes = flag.Int("partition", 256<<10, "partition/bin size in bytes (power of two)")
		workers   = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		damping   = flag.Float64("damping", 0.85, "damping factor")
		redist    = flag.Bool("redistribute", false, "redistribute dangling mass (rank sums to 1)")
		seeds     = flag.String("seeds", "", "comma-separated seed vertices: compute Personalized PageRank instead of global")
		epsilon   = flag.Float64("epsilon", 0, "PPR termination: stop once the residual L1 error bound drops below this (default 1e-7)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "pcpm-pagerank:", err)
		os.Exit(1)
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()

	g, err := pcpm.LoadGraph(f)
	if err != nil {
		fail(err)
	}
	if *seeds != "" {
		// Personalized mode uses the push engine, not the global iteration
		// knobs — reject explicitly-set flags that would silently do nothing.
		// It never touches the component structure either, so the summary
		// skips the decomposition the global banner pays for.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "method", "iters", "tol", "redistribute":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			fail(fmt.Errorf("%s not used in -seeds (personalized) mode; its knobs are -epsilon, -damping, -partition, -workers, -top",
				strings.Join(conflicting, ", ")))
		}
		s := g.ComputeStats()
		fmt.Printf("graph: %d nodes, %d edges, avg degree %.2f, %d dangling\n",
			s.Nodes, s.Edges, s.AvgDegree, s.Dangling)
		runPersonalized(g, *seeds, *damping, *epsilon, *partBytes, *workers, *top, fail)
		return
	}

	// One decomposition serves both the banner's component stats and — for
	// -method componentwise — the solve itself.
	dec := pcpm.DecomposeSCC(g, *workers)
	s := pcpm.GraphStatsFromSCC(g, dec)
	fmt.Printf("graph: %d nodes, %d edges, avg degree %.2f, %d dangling, %d components (largest %d)\n",
		s.Nodes, s.Edges, s.AvgDegree, s.Dangling, s.Components, s.LargestComponent)

	res, err := pcpm.RunWithSCC(g, pcpm.Options{
		Method:               pcpm.Method(*method),
		Damping:              *damping,
		PartitionBytes:       *partBytes,
		Workers:              *workers,
		Iterations:           *iters,
		Tolerance:            *tol,
		RedistributeDangling: *redist,
	}, dec)
	if err != nil {
		fail(err)
	}

	fmt.Printf("method: %s, iterations: %d, final L1 delta: %.3g\n",
		res.Method, res.Iterations, res.Delta)
	if res.CompressionRatio > 0 {
		fmt.Printf("compression ratio r = %.2f, preprocessing %v\n",
			res.CompressionRatio, res.PreprocessTime.Round(1e3))
	}
	if bd := res.Componentwise; bd != nil {
		fmt.Printf("condensation: %d components (largest %d), %d levels; kernels: %d closed-form, %d local, %d engine\n",
			bd.Components, bd.LargestComponent, bd.Levels,
			bd.ClosedForm, bd.LocalSolves, bd.EngineSolves)
		fmt.Printf("phases: decompose %v, schedule %v, solve %v\n",
			bd.Decompose.Round(1e3), bd.Schedule.Round(1e3), bd.Solve.Round(1e3))
	}
	if res.Componentwise == nil {
		// Per-iteration figures only make sense for the step-wise engines;
		// componentwise iterations cover a single component each.
		per := res.Stats.PerIteration()
		if per.Scatter > 0 || per.Gather > 0 {
			fmt.Printf("per iteration: scatter %v, gather %v, total %v\n",
				per.Scatter.Round(1e3), per.Gather.Round(1e3), per.Total.Round(1e3))
		} else {
			fmt.Printf("per iteration: %v\n", per.Total.Round(1e3))
		}
		gteps := float64(g.NumEdges()) / 1e9 / per.Total.Seconds()
		fmt.Printf("throughput: %.3f GTEPS\n", gteps)
	}

	fmt.Printf("top %d nodes:\n", *top)
	for i, e := range pcpm.TopK(res.Ranks, *top) {
		fmt.Printf("  %2d. node %-10d rank %.6g\n", i+1, e.Node, e.Rank)
	}
}

// runPersonalized answers one Personalized PageRank query from -seeds,
// through the same engine + per-run options split the serving layer pools:
// graph-shaped scratch fixed at construction, query parameters per call.
func runPersonalized(g *pcpm.Graph, seedSpec string, damping, epsilon float64,
	partBytes, workers, top int, fail func(error)) {
	var seedIDs []uint32
	for _, field := range strings.Split(seedSpec, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(field), 10, 32)
		if err != nil {
			fail(fmt.Errorf("bad -seeds entry %q: want a uint32 node ID", field))
		}
		seedIDs = append(seedIDs, uint32(v))
	}
	eng, err := pcpm.NewPPREngine(g, pcpm.PPREngineOptions{
		PartitionBytes: partBytes,
		Workers:        workers,
	})
	if err != nil {
		fail(err)
	}
	res, err := eng.Run(seedIDs, pcpm.PPRRunOptions{
		Damping: damping,
		Epsilon: epsilon,
		TopK:    top,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("personalized pagerank: seeds %v\n", seedIDs)
	fmt.Printf("rounds: %d (%d sparse, %d dense), pushes: %d, residual L1 <= %.3g\n",
		res.Rounds, res.SparseRounds, res.DenseRounds, res.Pushes, res.ResidualL1)
	if res.Truncated {
		fmt.Printf("WARNING: round cap reached with residual L1 %.3g still above the requested precision; scores are a partial answer\n",
			res.ResidualL1)
	}
	fmt.Printf("compute: %v\n", res.Duration.Round(1e3))
	fmt.Printf("top %d nodes:\n", top)
	for i, e := range res.Top {
		fmt.Printf("  %2d. node %-10d score %.6g\n", i+1, e.Node, e.Score)
	}
}
