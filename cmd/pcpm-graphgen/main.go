// Command pcpm-graphgen generates the synthetic dataset analogs (or custom
// graphs) and writes them as text edge lists or the repo's binary format.
//
// Usage:
//
//	pcpm-graphgen -dataset kron -divisor 256 -o kron.bin
//	pcpm-graphgen -dataset all -divisor 1024 -dir ./data
//	pcpm-graphgen -kind rmat -scale 18 -edgefactor 16 -o big.bin
//	pcpm-graphgen -kind er -nodes 100000 -edges 1600000 -o random.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/harness"
)

func main() {
	var (
		dataset    = flag.String("dataset", "", "paper dataset analog: gplus|pld|web|kron|twitter|sd1|all")
		divisor    = flag.Int("divisor", 256, "dataset scale divisor")
		kind       = flag.String("kind", "", "custom generator: rmat|er|ba|copy")
		scale      = flag.Int("scale", 16, "rmat: log2 node count")
		edgefactor = flag.Int("edgefactor", 16, "rmat: edges per node")
		nodes      = flag.Int("nodes", 1<<16, "er/ba/copy: node count")
		edges      = flag.Int64("edges", 1<<20, "er: edge count")
		degree     = flag.Int("degree", 16, "ba/copy: out-degree per node")
		locality   = flag.Float64("locality", 0.3, "copy: label locality in [0,1]")
		seed       = flag.Uint64("seed", 42, "generator seed")
		out        = flag.String("o", "", "output file (.txt = edge list, otherwise binary)")
		dir        = flag.String("dir", ".", "output directory for -dataset all")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "pcpm-graphgen:", err)
		os.Exit(1)
	}

	write := func(g *graph.Graph, path string) {
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if strings.HasSuffix(path, ".txt") {
			err = graph.WriteEdgeList(f, g)
		} else {
			err = graph.WriteBinary(f, g)
		}
		if err != nil {
			fail(err)
		}
		s := g.ComputeStats()
		fmt.Printf("%s: %d nodes, %d edges, avg degree %.2f\n", path, s.Nodes, s.Edges, s.AvgDegree)
	}

	switch {
	case *dataset == "all":
		for _, spec := range harness.Datasets() {
			g, err := spec.Generate(*divisor, *seed)
			if err != nil {
				fail(err)
			}
			write(g, filepath.Join(*dir, spec.Name+".bin"))
		}
	case *dataset != "":
		spec, err := harness.DatasetByName(*dataset)
		if err != nil {
			fail(err)
		}
		g, err := spec.Generate(*divisor, *seed)
		if err != nil {
			fail(err)
		}
		path := *out
		if path == "" {
			path = spec.Name + ".bin"
		}
		write(g, path)
	case *kind != "":
		if *out == "" {
			fail(fmt.Errorf("-o is required with -kind"))
		}
		var g *graph.Graph
		var err error
		switch *kind {
		case "rmat":
			g, err = gen.RMAT(gen.Graph500RMAT(*scale, *edgefactor, *seed), graph.BuildOptions{})
		case "er":
			g, err = gen.ErdosRenyi(*nodes, *edges, *seed, graph.BuildOptions{})
		case "ba":
			g, err = gen.PreferentialAttachment(*nodes, *degree, *seed, graph.BuildOptions{})
		case "copy":
			g, err = gen.Copying(gen.CopyingConfig{
				N: *nodes, OutDegree: *degree, CopyProb: 0.45,
				Locality: *locality, Seed: *seed,
			}, graph.BuildOptions{})
		default:
			err = fmt.Errorf("unknown kind %q", *kind)
		}
		if err != nil {
			fail(err)
		}
		write(g, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
