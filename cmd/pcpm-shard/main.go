// Command pcpm-shard runs the distributed serving tier: shard workers that
// each own a contiguous row block of a graph's CSR and run partition-centric
// PageRank rounds against their block, and a coordinator that fronts a fleet
// of workers behind the exact HTTP API pcpm-serve exposes.
//
// Worker mode (no -workers flag) owns row blocks and exchanges rank slices
// with its peers each round:
//
//	pcpm-shard -addr :9001
//	pcpm-shard -addr :9002
//
// Coordinator mode (-workers) ingests graphs, splits them into contiguous
// row blocks balanced by in-degree (component-aware when the graph has SCC
// structure), ships one block payload per worker, drives distributed solves
// to convergence, and answers the ordinary serving endpoints by
// scatter-gather — clients cannot tell it from a monolithic pcpm-serve:
//
//	pcpm-shard -addr :8080 -workers http://localhost:9001,http://localhost:9002
//	curl -XPOST --data-binary @edges.txt 'localhost:8080/v1/graphs?name=mine'
//	curl 'localhost:8080/v1/graphs/mine/topk?k=5'
//	curl 'localhost:8080/v1/graphs/mine/rank/42'
//	curl -XPOST 'localhost:8080/v1/graphs/mine/recompute?wait=true' -d '{"damping":0.9}'
//
// Sharded deployments are memory-only: -data-dir durability and -follow
// replication belong to pcpm-serve, and edge deltas answer 501 (re-upload
// the graph to mutate it). GET /healthz reports readiness on both modes so
// orchestration can poll instead of sleeping.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pcpm "repro"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	var (
		addr    = flag.String("addr", ":9000", "listen address")
		workers = flag.String("workers", "",
			"coordinator mode: comma-separated worker base URLs (e.g. http://h1:9001,http://h2:9001); empty runs as a worker")
		method    = flag.String("method", "pcpm", "coordinator default engine for coordinator-local paths (personalized PageRank)")
		iters     = flag.Int("iters", 20, "default fixed iteration count")
		tol       = flag.Float64("tol", 0, "default convergence tolerance (0 = fixed iterations)")
		damping   = flag.Float64("damping", 0.85, "default damping factor")
		partBytes = flag.Int("partition", 256<<10, "default partition/bin size in bytes")
		engWork   = flag.Int("engine-workers", 0, "default per-process worker-thread count (0 = GOMAXPROCS)")
		maxUpload = flag.Int64("max-upload", 1<<30,
			"coordinator mode: largest accepted graph upload in bytes; bigger bodies get 413")
		solveTimeout = flag.Duration("solve-timeout", 10*time.Minute,
			"coordinator mode: wall-clock budget for one distributed solve")
		swapWait = flag.Duration("swap-wait", shard.DefaultSwapWait,
			"worker mode: how long a round waits for peer rank slices before declaring the fleet broken")
		verbose = flag.Bool("v", false, "debug logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var handler http.Handler
	if *workers == "" {
		w := shard.NewWorker(shard.WorkerConfig{
			Logger:   log.New(os.Stderr, "worker ", log.LstdFlags|log.Lmsgprefix),
			SwapWait: *swapWait,
		})
		handler = w.Handler()
		logger.Info("shard worker mode", "addr", *addr)
	} else {
		urls := strings.Split(*workers, ",")
		for i := range urls {
			urls[i] = strings.TrimSpace(urls[i])
		}
		srv := serve.New(serve.Config{
			Defaults: pcpm.Options{
				Method:         pcpm.Method(*method),
				Damping:        *damping,
				Iterations:     *iters,
				Tolerance:      *tol,
				PartitionBytes: *partBytes,
				Workers:        *engWork,
			},
			Logger:            logger,
			MaxUploadBytes:    *maxUpload,
			ShardWorkers:      urls,
			ShardSolveTimeout: *solveTimeout,
		})
		handler = srv.Handler()
		logger.Info("shard coordinator mode", "addr", *addr, "workers", len(urls))
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown incomplete", "error", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
