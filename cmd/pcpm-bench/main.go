// Command pcpm-bench regenerates the paper's tables and figures on the
// scaled dataset analogs.
//
// Usage:
//
//	pcpm-bench -run all                     # every experiment
//	pcpm-bench -run table5,fig7 -divisor 256
//	pcpm-bench -list
//	pcpm-bench -run fig8 -format csv -out fig8.csv
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		divisor = flag.Int("divisor", 256, "dataset scale divisor (paper size / divisor)")
		iters   = flag.Int("iters", 20, "timed iterations per measurement")
		workers = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		format  = flag.String("format", "text", "output format: text, csv, or markdown")
		out     = flag.String("out", "", "write output to file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	opt := harness.Options{
		Divisor:    *divisor,
		Workers:    *workers,
		Iterations: *iters,
		Seed:       *seed,
	}

	var ids []string
	if *run == "all" {
		for _, e := range harness.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	var b strings.Builder
	for _, id := range ids {
		exp, err := harness.Lookup(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		table, err := exp.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			b.WriteString(table.CSV())
		case "markdown":
			b.WriteString(table.Markdown())
		default:
			b.WriteString(table.Render())
			fmt.Fprintf(&b, "(%s in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(b.String())
}
