// Command pcpm-loadtest replays a deterministic mixed workload against a
// rank-serving daemon and emits a JSON report whose "benchmarks" array uses
// the same {name, iterations, ns_per_op} records CI folds into
// BENCH_ci.json, so load-test runs append to the benchmark trajectory.
//
// Two targets:
//
//   - Remote: point -addr at a running pcpm-serve. Latencies and error
//     counts are end-to-end; allocations cannot be observed across the
//     network hop.
//   - Self-contained (-self): generate a graph, start an in-process server
//     on a loopback port, and replay against it. Because client and server
//     share the process, the per-endpoint allocs/op probe sees the serving
//     layer's allocations — the number the engine-pool work optimizes.
//
// Adding -shard-workers N to -self swaps the monolithic in-process server
// for a sharded deployment: N pcpm-shard worker processes are spawned on
// loopback ports (build the binary and point -shard-bin at it), the
// in-process server runs in coordinator mode over them, and the replay
// measures scatter-gather serving on identical traffic to a monolithic
// run — same seed, same schedule, directly comparable reports. Mutate
// traffic does not compose with sharded targets (edge deltas answer 501).
//
// Usage:
//
//	pcpm-loadtest -self -nodes 100000 -ops 5000 -c 16 -o load.json
//	pcpm-loadtest -addr http://127.0.0.1:8080 -graph web -nodes 1791489 -ops 10000
//	pcpm-loadtest -self -mix 'topk=10,ppr=60,batch=20,recompute=5,upload=5' -seed 7
//	pcpm-loadtest -self -mix 'topk=40,rank=10,ppr=20,mutate=20,recompute=5' -seed 7
//	pcpm-loadtest -self -data-dir /tmp/pcpm-load -mix 'topk=40,mutate=20,restart=2'
//	pcpm-loadtest -self -shard-workers 2 -shard-bin ./pcpm-shard -ops 3000
//
// The mutate kind exercises the dynamic-graph path: each mutate op POSTs a
// small edge-insert batch to /v1/graphs/{name}/edges and then deletes the
// same batch, so the replayed graph's edge count is conserved. Mutate and
// upload do not compose in one mix (a replace re-upload between the two
// halves invalidates the delete).
//
// The restart kind (requires -self with -data-dir) exercises crash
// recovery under load: each restart op closes the in-process server and
// recovers a fresh one from the data directory while the rest of the
// traffic is held back, so the restart's latency sample is the recovery
// time.
//
// The same -seed always replays the same request sequence, so two builds
// of the server can be compared on identical traffic.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	pcpm "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/loadgen"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "", "target server base URL (e.g. http://127.0.0.1:8080); empty with -self runs in-process")
		self    = flag.Bool("self", false, "start an in-process server with a generated graph (enables allocs/op)")
		name    = flag.String("graph", "load", "graph registry name to target")
		nodes   = flag.Int("nodes", 50000, "vertex ID space of the target graph (generated size with -self)")
		degree  = flag.Int("degree", 8, "average out-degree of the generated graph (-self)")
		ops     = flag.Int("ops", 2000, "total operations to replay")
		conc    = flag.Int("c", 8, "concurrent in-flight requests")
		seed    = flag.Uint64("seed", 42, "workload seed; same seed, same request sequence")
		zipfS   = flag.Float64("zipf", 1.2, "Zipf skew exponent for seed/vertex draws (> 1)")
		k       = flag.Int("k", 10, "top-k payload size of topk/ppr operations")
		batch   = flag.Int("batch", 4, "queries per ppr_batch operation")
		epsilon = flag.Float64("epsilon", 0, "requested PPR epsilon (0 = server default)")
		mixSpec = flag.String("mix", "", `operation mix, e.g. "topk=50,rank=15,ppr=25,batch=6,recompute=2,upload=2" (default: that profile); add mutate=N for edge-update traffic`)
		compRec = flag.Bool("recompute-componentwise", false, "recompute ops request the componentwise (SCC-condensation) solver via overrides")
		upload  = flag.String("upload-file", "", "graph file re-uploaded by upload ops (remote mode; -self uses the generated graph)")
		dataDir = flag.String("data-dir", "",
			"durable data directory for the -self server; required for restart=N mix traffic (each restart op recovers the server from it)")
		promoteURL = flag.String("promote-url", "",
			"follower base URL targeted by promote=N mix traffic (the first promote op performs the failover, the rest measure the idempotent path)")
		shardWorkers = flag.Int("shard-workers", 0,
			"with -self: spawn this many pcpm-shard worker processes and run the in-process server in coordinator mode over them (0 = monolithic)")
		shardBin = flag.String("shard-bin", "pcpm-shard",
			"pcpm-shard binary spawned for -shard-workers (path or $PATH name)")
		out = flag.String("o", "", "write the JSON report here (default stdout)")
	)
	var followers []string
	flag.Func("follower", "replica base URL for follower_read mix traffic (repeatable)", func(v string) error {
		followers = append(followers, v)
		return nil
	})
	flag.Parse()

	// cleanup tears down spawned shard-worker processes; os.Exit skips
	// defers, so every exit path calls it explicitly (it is idempotent).
	cleanup := func() {}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "pcpm-loadtest:", err)
		cleanup()
		os.Exit(1)
	}

	cfg := loadgen.Config{
		Graph:       *name,
		Seed:        *seed,
		Ops:         *ops,
		Concurrency: *conc,
		Nodes:       *nodes,
		ZipfS:       *zipfS,
		K:           *k,
		BatchSize:   *batch,
		Epsilon:     *epsilon,

		RecomputeComponentwise: *compRec,
		FollowerURLs:           followers,
		PromoteURL:             *promoteURL,
	}
	if *mixSpec != "" {
		mix, err := loadgen.ParseMix(*mixSpec)
		if err != nil {
			fail(err)
		}
		cfg.Mix = mix
	}

	switch {
	case *self && *shardWorkers > 0:
		if *dataDir != "" {
			fail(fmt.Errorf("-shard-workers is memory-only; it does not compose with -data-dir"))
		}
		base, body, stop, err := startShardTarget(*name, *nodes, *degree, *seed, *shardWorkers, *shardBin)
		if err != nil {
			fail(err)
		}
		cleanup = stop
		cfg.BaseURL = base
		cfg.UploadBody = body
		cfg.MeasureAllocs = true
		cfg.Deployment = fmt.Sprintf("sharded-%d", *shardWorkers)
		fmt.Fprintf(os.Stderr, "pcpm-loadtest: in-process coordinator at %s over %d shard workers (%d nodes)\n",
			base, *shardWorkers, *nodes)
	case *self:
		base, body, restart, err := startSelfTarget(*name, *nodes, *degree, *seed, *dataDir)
		if err != nil {
			fail(err)
		}
		cfg.BaseURL = base
		cfg.UploadBody = body
		cfg.RestartFn = restart
		cfg.MeasureAllocs = true
		cfg.Deployment = "monolithic"
		fmt.Fprintf(os.Stderr, "pcpm-loadtest: in-process server at %s (%d nodes)\n", base, *nodes)
	case *addr != "":
		cfg.BaseURL = *addr
		if *upload != "" {
			body, err := os.ReadFile(*upload)
			if err != nil {
				fail(err)
			}
			cfg.UploadBody = body
		}
	default:
		fail(fmt.Errorf("need -addr or -self"))
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		fail(err)
	}

	output := struct {
		Kind       string                `json:"kind"`
		Report     *loadgen.Report       `json:"report"`
		Benchmarks []loadgen.BenchRecord `json:"benchmarks"`
	}{
		Kind:       "pcpm-loadtest",
		Report:     rep,
		Benchmarks: rep.BenchRecords(),
	}
	enc, err := json.MarshalIndent(output, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}

	fmt.Fprintf(os.Stderr, "pcpm-loadtest: %d ops in %.0f ms (%.0f ops/s), %d errors\n",
		rep.Ops, rep.DurationMS, rep.OpsPerSec, rep.Errors)
	for _, ep := range rep.Endpoints {
		line := fmt.Sprintf("  %-10s %5d ops  p50 %8.3f ms  p99 %8.3f ms  errors %d",
			ep.Endpoint, ep.Count, ep.P50MS, ep.P99MS, ep.Errors)
		if ep.AllocsPerOp > 0 {
			line += fmt.Sprintf("  allocs/op %.0f", ep.AllocsPerOp)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	cleanup()
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// startShardTarget builds the sharded self-contained deployment: n
// pcpm-shard worker processes on free loopback ports, each polled on
// /healthz until ready, fronted by an in-process coordinator-mode server
// holding the generated graph. The returned cleanup kills the workers; it
// is safe to call more than once.
func startShardTarget(name string, nodes, degree int, seed uint64, n int, bin string) (string, []byte, func(), error) {
	g, err := gen.PreferentialAttachment(nodes, degree, seed, graph.BuildOptions{})
	if err != nil {
		return "", nil, nil, err
	}
	var bin64 bytes.Buffer
	if err := pcpm.SaveBinary(&bin64, g); err != nil {
		return "", nil, nil, err
	}

	// Reserve n loopback ports by listening and closing: the tiny window
	// before the worker binds is harmless on a loadtest box.
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, nil, err
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}

	var procs []*exec.Cmd
	var once sync.Once
	cleanup := func() {
		once.Do(func() {
			for _, cmd := range procs {
				cmd.Process.Kill() //nolint:errcheck // best-effort teardown
				cmd.Wait()         //nolint:errcheck // reap; exit state is irrelevant
			}
		})
	}
	for _, addr := range addrs {
		cmd := exec.Command(bin, "-addr", addr)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			cleanup()
			return "", nil, nil, fmt.Errorf("spawning %s: %w (build it with: go build ./cmd/pcpm-shard)", bin, err)
		}
		procs = append(procs, cmd)
	}
	urls := make([]string, n)
	for i, addr := range addrs {
		urls[i] = "http://" + addr
		if err := waitHealthy(urls[i], 10*time.Second); err != nil {
			cleanup()
			return "", nil, nil, err
		}
	}

	srv := serve.New(serve.Config{
		Defaults:     pcpm.Options{Iterations: 10},
		ShardWorkers: urls,
	})
	if _, err := srv.AddGraph(name, g, pcpm.Options{}, false); err != nil {
		cleanup()
		return "", nil, nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go hs.Serve(l) //nolint:errcheck // lives for the process
	return "http://" + l.Addr().String(), bin64.Bytes(), cleanup, nil
}

// waitHealthy polls base's /healthz until it answers 200 or the budget runs
// out — the readiness contract that replaces sleep loops.
func waitHealthy(base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("worker at %s not healthy after %v: %v", base, budget, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// startSelfTarget generates a deterministic scale-free graph (preferential
// attachment, like a follower network), loads it into an in-process serving
// daemon on a loopback port, and returns the base URL, the graph's binary
// serialization (the re-upload payload), and — when dataDir is set — a
// restart function that tears the server down and recovers a fresh one
// from the data directory, the in-process analogue of relaunching
// pcpm-serve -data-dir on the same port.
func startSelfTarget(name string, nodes, degree int, seed uint64, dataDir string) (string, []byte, func() error, error) {
	g, err := gen.PreferentialAttachment(nodes, degree, seed, graph.BuildOptions{})
	if err != nil {
		return "", nil, nil, err
	}
	var bin bytes.Buffer
	if err := pcpm.SaveBinary(&bin, g); err != nil {
		return "", nil, nil, err
	}

	opts := pcpm.Options{Iterations: 10}
	newServer := func() (*serve.Server, error) {
		srv := serve.New(serve.Config{Defaults: opts, DataDir: dataDir})
		if _, err := srv.Recover(); err != nil {
			return nil, err
		}
		return srv, nil
	}
	srv, err := newServer()
	if err != nil {
		return "", nil, nil, err
	}
	if _, err := srv.AddGraph(name, g, opts, false); err != nil {
		return "", nil, nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	// The listener outlives individual servers: restarts swap the handler
	// behind it, so the base URL stays stable across recoveries.
	var handler atomic.Value
	handler.Store(srv.Handler())
	hs := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(http.Handler).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go hs.Serve(l) //nolint:errcheck // lives for the process

	var restart func() error
	if dataDir != "" {
		cur := srv
		restart = func() error {
			if err := cur.CloseDurable(); err != nil {
				return err
			}
			next, err := newServer()
			if err != nil {
				return err
			}
			handler.Store(next.Handler())
			cur = next
			return nil
		}
	}
	return "http://" + l.Addr().String(), bin.Bytes(), restart, nil
}
