// Webcrawl: show how node-label locality drives PCPM's PNG compression
// ratio and simulated DRAM traffic — the effect behind the paper's
// Table 6/7 and Fig. 11. A crawl-ordered web graph compresses nearly
// optimally; shuffling its labels destroys that, and GOrder recovers it.
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/memsim"
	"repro/internal/partition"
	"repro/internal/png"
	"repro/internal/reorder"
)

func analyze(name string, g *graph.Graph) {
	layout, err := partition.FromBytes(g.NumNodes(), 1<<10)
	if err != nil {
		log.Fatal(err)
	}
	pn, err := png.Build(g, layout, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := memsim.DefaultConfig()
	cfg.CacheBytes = 128 << 10
	sim, err := memsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr := memsim.MeasureSteadyState(memsim.NewPCPMReplay(g, pn, sim), sim)
	fmt.Printf("  %-16s r = %5.2f   |E'| = %8d   DRAM %5.1f B/edge\n",
		name, pn.CompressionRatio(g), pn.EdgesCompressed,
		float64(tr.TotalBytes())/float64(g.NumEdges()))
}

func main() {
	// A crawl-ordered web graph: 100K pages, strong label locality.
	crawl, err := gen.Copying(gen.CopyingConfig{
		N: 100_000, OutDegree: 12, CopyProb: 0.5, Locality: 0.9,
		Window: 100_000 / 128, Seed: 3,
	}, graph.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web crawl: %d pages, %d links\n", crawl.NumNodes(), crawl.NumEdges())
	fmt.Println("PCPM compression and simulated DRAM traffic per labeling:")

	analyze("crawl order", crawl)

	shuffled, err := reorder.Apply(crawl, reorder.Random(crawl.NumNodes(), 11))
	if err != nil {
		log.Fatal(err)
	}
	analyze("shuffled labels", shuffled)

	byDegree, err := reorder.Apply(shuffled, reorder.Degree(shuffled))
	if err != nil {
		log.Fatal(err)
	}
	analyze("degree order", byDegree)

	byBFS, err := reorder.Apply(shuffled, reorder.BFS(shuffled))
	if err != nil {
		log.Fatal(err)
	}
	analyze("BFS order", byBFS)

	byGOrder, err := reorder.Apply(shuffled, reorder.GOrder(shuffled, reorder.DefaultGOrderConfig()))
	if err != nil {
		log.Fatal(err)
	}
	analyze("GOrder", byGOrder)

	fmt.Println("\nhigher r → fewer updates scattered → less DRAM traffic (paper eq. 5)")
}
