// Analytics: run graph algorithms beyond PageRank on the partition-centric
// engine — shortest paths and connected components as semiring SpMV
// (the paper's §1/§6 generality claim).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// A road-network-ish sparse weighted graph.
	base, err := gen.Copying(gen.CopyingConfig{
		N: 50_000, OutDegree: 4, CopyProb: 0.2, Locality: 0.8,
		Window: 400, Seed: 5,
	}, graph.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	g, err := gen.WithUniformWeights(base, 0.5, 5.0, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d weighted edges\n", g.NumNodes(), g.NumEdges())

	start := time.Now()
	sp, err := apps.SSSP(g, 0, apps.BackendPCPM, 16<<10)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	var far float32
	for _, d := range sp.Dist {
		if d < float32(1e30) {
			reached++
			if d > far {
				far = d
			}
		}
	}
	fmt.Printf("SSSP from node 0 (PCPM backend, min-plus semiring):\n")
	fmt.Printf("  %d/%d nodes reachable, eccentricity %.2f, %d rounds, %v\n",
		reached, g.NumNodes(), far, sp.Iterations, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	cc, err := apps.WCC(g, apps.BackendPCPM, 16<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected components (min-label propagation):\n")
	fmt.Printf("  %d components in %d rounds, %v\n",
		cc.Components, cc.Iterations, time.Since(start).Round(time.Millisecond))
}
