// Serving: stand up the rank-serving subsystem in-process, ingest a graph
// over HTTP exactly as a client would, and query it — the "millions of
// users" path in miniature. A recompute with a different damping factor
// runs while top-k queries keep answering from the cached snapshot.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	pcpm "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

func main() {
	// An in-process HTTP server; `pcpm-serve -addr :8080` is the real thing.
	srv := serve.New(serve.Config{
		Defaults: pcpm.Options{Iterations: 20},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A client uploads a graph as a plain text edge list.
	g, err := gen.PreferentialAttachment(2000, 8, 42, graph.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var body bytes.Buffer
	if err := pcpm.SaveEdgeList(&body, g); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/graphs?name=social", "text/plain", &body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/graphs?name=social -> %s\n", resp.Status)
	printBody(resp)

	// Top-k queries read the cached snapshot — no engine run per query.
	resp, err = http.Get(ts.URL + "/v1/graphs/social/topk?k=5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /v1/graphs/social/topk?k=5 -> %s\n", resp.Status)
	printBody(resp)

	// Recompute with a different damping factor; wait=true blocks until the
	// new snapshot is published, then queries serve the new ranks.
	resp, err = http.Post(ts.URL+"/v1/graphs/social/recompute?wait=true",
		"application/json", bytes.NewBufferString(`{"damping":0.5}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOST /v1/graphs/social/recompute (damping 0.5) -> %s\n", resp.Status)
	printBody(resp)

	resp, err = http.Get(ts.URL + "/v1/graphs/social/rank/0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /v1/graphs/social/rank/0 -> %s\n", resp.Status)
	printBody(resp)
}

// printBody pretty-prints a JSON response body.
func printBody(resp *http.Response) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if json.Indent(&buf, raw, "  ", "  ") == nil {
		fmt.Printf("  %s\n", buf.String())
	} else {
		fmt.Printf("  %s\n", raw)
	}
}
