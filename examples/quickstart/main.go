// Quickstart: build a small graph by hand, run the PCPM engine, and print
// the ranking. This is the paper's Fig. 3a example graph — 9 nodes across
// 3 partitions.
package main

import (
	"fmt"
	"log"

	pcpm "repro"
	"repro/internal/graph"
)

func main() {
	b := pcpm.NewGraphBuilder(9)
	for _, e := range [][2]uint32{
		{3, 2}, {6, 0}, {6, 1}, {7, 2}, {0, 4},
		{1, 3}, {1, 4}, {2, 5}, {2, 8}, {7, 8},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	res, err := pcpm.Run(g, pcpm.Options{
		Method:         pcpm.MethodPCPM,
		PartitionBytes: 16, // 4 nodes per partition at this toy scale
		Iterations:     30,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PCPM on the paper's Fig. 3a graph (%d nodes, %d edges)\n",
		g.NumNodes(), g.NumEdges())
	fmt.Printf("compression ratio r = |E|/|E'| = %.2f\n", res.CompressionRatio)
	fmt.Println("PageRank:")
	for _, e := range pcpm.TopK(res.Ranks, g.NumNodes()) {
		fmt.Printf("  node %d: %.4f\n", e.Node, e.Rank)
	}
}
