// Designspace: explore the partition-size trade-off of the paper's §5.3.2
// (Figs. 11–14) on one graph: compression ratio, scatter/gather split, and
// total time across partition sizes.
package main

import (
	"fmt"
	"log"

	pcpm "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	g, err := gen.RMAT(gen.Graph500RMAT(17, 16, 33), graph.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kron-style graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("%-10s %8s %12s %12s %12s\n",
		"partition", "r", "scatter/it", "gather/it", "total/it")

	for _, size := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		res, err := pcpm.Run(g, pcpm.Options{
			Method:         pcpm.MethodPCPM,
			PartitionBytes: size,
			Iterations:     5,
		})
		if err != nil {
			log.Fatal(err)
		}
		per := res.Stats.PerIteration()
		fmt.Printf("%-10s %8.2f %12v %12v %12v\n",
			fmtBytes(size), res.CompressionRatio,
			per.Scatter.Round(1000), per.Gather.Round(1000), per.Total.Round(1000))
	}
	fmt.Println("\nlarger partitions compress better (fewer updates) until the")
	fmt.Println("partition outgrows the cache and random accesses spill to DRAM")
}

func fmtBytes(b int) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dMB", b>>20)
	}
	return fmt.Sprintf("%dKB", b>>10)
}
