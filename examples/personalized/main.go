// Personalized: every user gets their own ranking. This example builds one
// scale-free graph, then contrasts the single global PageRank vector with
// per-user Personalized PageRank vectors computed by the partition-centric
// forward-push engine — first one interactive-style query, then a batch of
// "users" evaluated together the way the serving layer does it.
package main

import (
	"fmt"
	"log"

	pcpm "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// A follower-network stand-in: skewed in-degrees, like the paper's
	// gplus/twitter datasets.
	g, err := gen.PreferentialAttachment(5000, 8, 42, graph.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	// The global ranking everyone shares.
	global, err := pcpm.Run(g, pcpm.Options{Iterations: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("global top 5 (same for every user):")
	for i, e := range pcpm.TopK(global.Ranks, 5) {
		fmt.Printf("  %d. node %-6d rank %.5f\n", i+1, e.Node, e.Rank)
	}

	// One user's personalized view: ranks concentrate around their seeds.
	seeds := []uint32{4321}
	res, err := pcpm.RunPersonalized(g, seeds, pcpm.PPROptions{TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npersonalized top 5 for seed %v:\n", seeds)
	for i, e := range res.Top {
		fmt.Printf("  %d. node %-6d score %.5f\n", i+1, e.Node, e.Score)
	}
	fmt.Printf("(%d rounds: %d sparse push, %d dense fallback; residual L1 <= %.2g)\n",
		res.Rounds, res.SparseRounds, res.DenseRounds, res.ResidualL1)

	// Serving-style reuse: one engine holds the graph-shaped scratch
	// (~25 bytes/node), and every query brings its own parameters — a
	// quick coarse answer and a high-precision one run on the same scratch
	// with nothing carried over between calls. This per-call split is what
	// lets pcpm-serve pool engines across cache-missed queries.
	eng, err := pcpm.NewPPREngine(g, pcpm.PPREngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	coarse, err := eng.Run(seeds, pcpm.PPRRunOptions{TopK: 1, TopOnly: true, Epsilon: 1e-4})
	if err != nil {
		log.Fatal(err)
	}
	precise, err := eng.Run(seeds, pcpm.PPRRunOptions{TopK: 1, TopOnly: true, Epsilon: 1e-10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame engine, per-call precision: eps 1e-4 -> %d rounds, eps 1e-10 -> %d rounds (top node %d either way)\n",
		coarse.Rounds, precise.Rounds, precise.Top[0].Node)

	// Batch mode: many users answered together. Cross-query dynamic
	// scheduling (each query single-threaded) is how the /v1/graphs/{name}/ppr
	// endpoint evaluates cache misses.
	users := [][]uint32{{10}, {999, 1001}, {2500}, {4999}}
	batch, err := pcpm.RunPersonalizedBatch(g, users, pcpm.PPROptions{TopK: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbatch of users, top recommendation each:")
	for i, r := range batch {
		fmt.Printf("  user %v -> node %-6d score %.5f (%d pushes)\n",
			users[i], r.Top[0].Node, r.Top[0].Score, r.Pushes)
	}
}
