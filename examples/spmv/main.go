// Spmv: use the partition-centric methodology for generic sparse
// matrix–vector multiplication (paper §3.5) — including a non-square
// matrix and weighted PageRank.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spmv"
)

func main() {
	// A rectangular sparse matrix: 300K rows × 60K cols, ~4M nonzeros
	// (e.g. a document-term incidence matrix).
	const rows, cols, nnz = 300_000, 60_000, 4_000_000
	rng := rand.New(rand.NewPCG(1, 2))
	entries := make([]spmv.Entry, nnz)
	for i := range entries {
		entries[i] = spmv.Entry{
			Row: uint32(rng.IntN(rows)),
			Col: uint32(rng.IntN(cols)),
			Val: rng.Float32(),
		}
	}
	m, err := spmv.NewMatrix(rows, cols, entries)
	if err != nil {
		log.Fatal(err)
	}
	x := make([]float32, cols)
	for i := range x {
		x[i] = rng.Float32()
	}
	fmt.Printf("matrix: %d x %d, %d nonzeros\n", m.Rows(), m.Cols(), m.NNZ())

	run := func(name string, e spmv.Engine) []float32 {
		y := make([]float32, rows)
		start := time.Now()
		const reps = 5
		for i := 0; i < reps; i++ {
			if err := e.Mul(x, y); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  %-6s %8v per multiply\n", name, time.Since(start)/reps)
		return y
	}

	csr := spmv.NewCSREngine(m, 0)
	pe, err := spmv.NewPCPMEngine(m, 32<<10, 0)
	if err != nil {
		log.Fatal(err)
	}
	be, err := spmv.NewBVGASEngine(m, 32<<10, 0)
	if err != nil {
		log.Fatal(err)
	}
	yc := run("csr", csr)
	yp := run("pcpm", pe)
	run("bvgas", be)
	fmt.Printf("  pcpm compression ratio: %.2f\n", pe.CompressionRatio())

	var maxDiff float64
	for i := range yc {
		d := float64(yc[i] - yp[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("  max |csr - pcpm| = %.2g (agreement check)\n", maxDiff)

	// Weighted PageRank over a weighted graph (§3.5's first extension).
	g, err := gen.RMAT(gen.Graph500RMAT(14, 16, 9), graph.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	wg, err := gen.WithUniformWeights(g, 0.1, 2.0, 17)
	if err != nil {
		log.Fatal(err)
	}
	wm, err := spmv.FromGraph(wg)
	if err != nil {
		log.Fatal(err)
	}
	we, err := spmv.NewPCPMEngine(wm, 32<<10, 0)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := spmv.WeightedPageRank(wg, we, 0.85, 15)
	if err != nil {
		log.Fatal(err)
	}
	var best uint32
	for v := range pr {
		if pr[v] > pr[best] {
			best = uint32(v)
		}
	}
	fmt.Printf("\nweighted PageRank on %d-node weighted Kronecker graph:\n", wg.NumNodes())
	fmt.Printf("  top node %d with rank %.5f\n", best, pr[best])
}
