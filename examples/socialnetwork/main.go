// Socialnetwork: rank influencers in a synthetic follower network (the
// paper's gplus/twitter workload class) and compare every engine's
// wall-clock time on the same graph — a miniature of the paper's Table 5.
package main

import (
	"fmt"
	"log"

	pcpm "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// A follower network: 200K users, 16 follows each, in-degree skewed by
	// preferential attachment (celebrities accumulate followers).
	const users = 200_000
	g, err := gen.PreferentialAttachment(users, 16, 7, graph.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower network: %d users, %d follow edges, max in-degree %d\n",
		g.NumNodes(), g.NumEdges(), g.MaxInDegree())

	var pcpmRanks []float32
	for _, m := range pcpm.Methods() {
		res, err := pcpm.Run(g, pcpm.Options{
			Method:         m,
			Iterations:     10,
			PartitionBytes: 64 << 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		per := res.Stats.PerIteration()
		extra := ""
		if res.CompressionRatio > 0 {
			extra = fmt.Sprintf("  (r=%.2f)", res.CompressionRatio)
		}
		fmt.Printf("  %-9s %8v/iter%s\n", m, per.Total.Round(1000), extra)
		if m == pcpm.MethodPCPM {
			pcpmRanks = res.Ranks
		}
	}

	fmt.Println("top influencers (PCPM ranks):")
	for i, e := range pcpm.TopK(pcpmRanks, 5) {
		fmt.Printf("  %d. user %-8d rank %.5f (followers: %d)\n",
			i+1, e.Node, e.Rank, g.InDegree(e.Node))
	}
}
